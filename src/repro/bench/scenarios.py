"""Workload scenarios behind every table and figure reproduction.

Each function builds a fresh deterministic :class:`repro.sim.World`,
runs one of the paper's measurement configurations, and returns the
number(s) the corresponding table reports.  The benchmark files under
``benchmarks/`` are thin: they call these, print paper-vs-measured, and
assert the shape.  Tests reuse them too, so a regression in a scenario
breaks loudly in both places.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.compiler import compile_expr, word
from ..core.ioctl import PFIoctl
from ..core.program import FilterProgram, asm
from ..kernelnet import (
    KernelTCP,
    KernelUDP,
    KernelVMTP,
    SockIoctl,
    link_stacks,
)
from ..baselines.user_demux import UserDemuxSystem
from ..net.medium import ChaosConfig
from ..protocols.bsp import BSPEndpoint
from ..protocols.pup import PupAddress
from ..protocols.vmtp import VMTPClient, VMTPServer
from ..sim import Close, Ioctl, Open, Read, Sleep, World, Write
from ..sim.display import DisplayDevice

__all__ = [
    "TEST_ETHERTYPE",
    "measure_demux_throughput",
    "demux_label_kwargs",
    "measure_send_cost",
    "measure_vmtp_minimal",
    "measure_vmtp_bulk",
    "measure_tcp_bulk",
    "measure_bsp_bulk",
    "measure_telnet",
    "measure_receive_cost",
    "measure_filter_cost",
    "kernel_profile",
    "CHAOS_SEEDS",
    "ACCEPTANCE_CHAOS",
    "SOAK_RETRIES",
    "run_bsp_chaos",
    "run_vmtp_chaos",
    "run_rarp_chaos",
    "run_pup_echo_chaos",
    "measure_spurious_retransmissions",
    "receive_saturation_pps",
    "run_overload_storm",
    "run_flow_storm",
    "run_partition_storm",
]

TEST_ETHERTYPE = 0x0900
"""Data-link type used by synthetic benchmark traffic."""


def _test_filter(priority: int = 10) -> FilterProgram:
    """Accept the synthetic benchmark traffic (one-field test)."""
    return compile_expr(word(6) == TEST_ETHERTYPE, priority=priority)


def _payload(host, size: int, dst: bytes) -> bytes:
    """A test frame of exactly ``size`` bytes including the header."""
    body = bytes(max(0, size - host.link.header_length))
    return host.link.frame(dst, host.address, TEST_ETHERTYPE, body)


# ---------------------------------------------------------------------------
# Demultiplexer hot-path throughput (wall clock, not simulated time)
# ---------------------------------------------------------------------------


def measure_demux_throughput(
    engine="checked",
    *,
    filters: int = 32,
    flow_cache: bool | int = False,
    use_decision_table: bool = False,
    batch: int = 0,
    min_seconds: float = 0.2,
    programs: "list[FilterProgram] | None" = None,
    packets: "list[bytes] | None" = None,
) -> float:
    """Wall-clock packets/second through the demultiplexer hot path.

    Unlike every other scenario here, this measures *our* CPU, not the
    simulated VAX's: it is the engine-comparison microbenchmark behind
    docs/PERFORMANCE.md.  ``filters`` ports bind the kernel-profile
    filter shape ``(word 6 == ethertype) & (word 7 == index)``; traffic
    round-robins over the indices so the linear engines test half the
    set per packet on average while the fused dispatch and the flow
    cache resolve each packet in O(1).  ``batch`` > 0 delivers the
    traffic through ``deliver_batch`` in bursts of that size (the IR
    engine's batch-at-a-time evaluator).  ``programs``/``packets``
    override the synthetic workload with a caller-supplied one (the
    ruleset-scale benchmark's ACL sets).
    """
    import time

    from ..core.demux import Engine, PacketFilterDemux
    from ..core.port import Port
    from ..core.words import pack_words

    demux = PacketFilterDemux(
        engine=engine if isinstance(engine, Engine) else Engine(engine),
        flow_cache=flow_cache,
        use_decision_table=use_decision_table,
        reorder_same_priority=False,
    )
    if programs is None:
        programs = [
            compile_expr(
                (word(6) == TEST_ETHERTYPE) & (word(7) == index),
                priority=10,
            )
            for index in range(filters)
        ]
    for index, program in enumerate(programs):
        # queue_limit=1 keeps delivery on the normal accept path while
        # bounding memory over millions of deliveries (overflow after
        # the first packet is counted, not stored).
        port = Port(index, queue_limit=1)
        port.bind_filter(program)
        demux.attach(port)
    if packets is None:
        packets = [
            pack_words([0, 0, 0, 0, 0, 0, TEST_ETHERTYPE, n % filters])
            for n in range(256)
        ]

    deliver = demux.deliver
    for packet in packets:  # warm-up: fills the flow cache, if any
        deliver(packet)
    delivered = 0
    start = time.perf_counter()
    if batch:
        bursts = [
            packets[offset : offset + batch]
            for offset in range(0, len(packets), batch)
        ]
        deliver_batch = demux.deliver_batch
        while True:
            for burst in bursts:
                deliver_batch(burst)
            delivered += len(packets)
            elapsed = time.perf_counter() - start
            if elapsed >= min_seconds:
                return delivered / elapsed
    while True:
        for packet in packets:
            deliver(packet)
        delivered += len(packets)
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return delivered / elapsed


def demux_label_kwargs(label: str) -> dict:
    """Map a recorded throughput-row label back onto
    :func:`measure_demux_throughput` keyword arguments.

    Labels look like ``"fused+cache, 32 filters"``: an engine name with
    an optional ``+cache`` (flow cache on) or ``+batch`` (burst
    delivery) modifier.  Shared by the regression guards so a new row
    in the throughput bench never needs a second parser.
    """
    engine, _, filters = label.partition(", ")
    base, _, modifier = engine.partition("+")
    kwargs: dict = {"engine": base, "filters": int(filters.split()[0])}
    if modifier == "cache":
        kwargs["flow_cache"] = True
    elif modifier == "batch":
        kwargs["batch"] = 64
    elif modifier:
        raise ValueError(f"unknown engine modifier in label {label!r}")
    return kwargs


# ---------------------------------------------------------------------------
# Table 6-1: cost of sending packets
# ---------------------------------------------------------------------------


def measure_send_cost(via: str, packet_bytes: int, count: int = 50) -> float:
    """Sender-host milliseconds per packet sent, PF vs (unchecksummed) UDP.

    The paper measured wall time around a send loop; we aggregate the
    charge ledger over the same loop — every attributed cost event on
    the sending host between the post-warm-up mark and the last write —
    which, for a CPU-bound send loop, is the same quantity with an
    audit trail attached.
    """
    world = World(ledger=True)
    sender = world.host("sender")
    sink = world.host("sink")
    marks: list[int] = []

    if via == "pf":
        sender.install_packet_filter()
        sink.install_packet_filter()  # nothing bound; frames go unclaimed

        def body():
            fd = yield Open("pf")
            frame = _payload(sender, packet_bytes, sink.address)
            yield Write(fd, frame)      # warm-up
            marks.append(world.ledger.mark())
            for _ in range(count):
                yield Write(fd, frame)

    elif via == "udp":
        stack_a = sender.install_kernel_stack()
        stack_b = sink.install_kernel_stack()
        link_stacks(stack_a, stack_b)
        KernelUDP(stack_a)
        KernelUDP(stack_b)
        # IP(20) + UDP(8) headers ride inside the frame size budget.
        data = bytes(max(0, packet_bytes - sender.link.header_length - 28))

        def body():
            fd = yield Open("udp")
            yield Ioctl(fd, SockIoctl.CONNECT, (stack_b.ip_address, 9))
            yield Write(fd, data)       # warm-up
            marks.append(world.ledger.mark())
            for _ in range(count):
                yield Write(fd, data)

    else:
        raise ValueError(f"unknown send path {via!r}")

    proc = sender.spawn("sender", body())
    world.run_until_done(proc)
    spent = world.ledger.total_cost(host="sender", start=marks[0])
    return spent / count * 1000.0


# ---------------------------------------------------------------------------
# Tables 6-2/6-3/6-4: VMTP
# ---------------------------------------------------------------------------


def measure_vmtp_minimal(implementation: str, operations: int = 25) -> float:
    """Elapsed ms per minimal (zero-byte read) VMTP transaction."""
    if implementation == "kernel":
        world = World()
        client_host = world.host("client")
        server_host = world.host("server")
        KernelVMTP(client_host)
        KernelVMTP(server_host)

        def server():
            fd = yield Open("vmtp")
            yield Ioctl(fd, SockIoctl.BIND, 35)
            while True:
                yield Read(fd)
                yield Write(fd, b"")

        def client():
            fd = yield Open("vmtp")
            yield Ioctl(fd, SockIoctl.CONNECT, (server_host.address, 35))
            yield Write(fd, b"")
            yield Read(fd)  # warm-up transaction
            start = world.now
            for _ in range(operations):
                yield Write(fd, b"")
                yield Read(fd)
            return (world.now - start) / operations

        server_host.spawn("vmtp-server", server())
        proc = client_host.spawn("vmtp-client", client())
        world.run_until_done(proc)
        return proc.result * 1000.0

    if implementation == "pf":
        world = World()
        client_host = world.host("client")
        server_host = world.host("server")
        client_host.install_packet_filter()
        server_host.install_packet_filter()

        def server():
            endpoint = VMTPServer(server_host, server_id=35)
            yield from endpoint.start()
            while True:
                request, reply = yield from endpoint.receive()
                yield from reply(b"")

        def client():
            endpoint = VMTPClient(
                client_host, client_id=7,
                server_station=server_host.address, server_id=35,
            )
            yield from endpoint.start()
            yield from endpoint.call(b"")  # warm-up
            start = world.now
            for _ in range(operations):
                yield from endpoint.call(b"")
            return (world.now - start) / operations

        server_host.spawn("vmtp-server", server())
        proc = client_host.spawn("vmtp-client", client())
        world.run_until_done(proc)
        return proc.result * 1000.0

    if implementation == "pf-userdemux":
        rate_or_latency = _vmtp_user_demux(
            mode="minimal", operations=operations
        )
        return rate_or_latency

    raise ValueError(f"unknown VMTP implementation {implementation!r}")


def _vmtp_user_demux(
    *,
    mode: str,
    operations: int = 25,
    total_bytes: int = 256 * 1024,
    segment_bytes: int = 16 * 1024,
):
    """Table 6-5: the client receives through a demultiplexing process.

    "This is done by using an extra process to receive packets, which
    are then passed to the actual VMTP process via a Unix pipe.  (In
    this case, the server process was not modified.)"
    """
    from ..protocols.ethertypes import ETHERTYPE_VMTP

    world = World()
    client_host = world.host("client")
    server_host = world.host("server")
    client_host.install_packet_filter()
    server_host.install_packet_filter()

    def classify(frame: bytes):
        if client_host.link.ethertype_of(frame) == ETHERTYPE_VMTP:
            return "vmtp"
        return None

    system = UserDemuxSystem(client_host, classify=classify, batching=True)
    inbox = system.add_destination("vmtp")

    def server():
        endpoint = VMTPServer(server_host, server_id=35)
        yield from endpoint.start()
        blob = bytes(segment_bytes)
        while True:
            request, reply = yield from endpoint.receive()
            yield from reply(blob if mode == "bulk" else b"")

    def client():
        endpoint = VMTPClient(
            client_host, client_id=7,
            server_station=server_host.address, server_id=35,
            inbox=inbox,
        )
        yield from endpoint.start()
        yield from endpoint.call(b"warm")
        start = world.now
        if mode == "minimal":
            for _ in range(operations):
                yield from endpoint.call(b"")
            return (world.now - start) / operations
        received = 0
        while received < total_bytes:
            received += len((yield from endpoint.call(b"read")))
        return (world.now - start, received)

    server_host.spawn("vmtp-server", server())
    client_proc = client_host.spawn("vmtp-client", client())
    system.register(inbox, client_proc)
    demux_proc = client_host.spawn("demuxd", system.run())
    system.attach(demux_proc)
    world.run_until_done(client_proc)

    if mode == "minimal":
        return client_proc.result * 1000.0
    duration, received = client_proc.result
    return (received / 1024.0) / duration


def measure_vmtp_bulk(
    implementation: str,
    *,
    batching: bool = True,
    total_bytes: int = 384 * 1024,
    segment_bytes: int = 16 * 1024,
) -> float:
    """Bulk-transfer KBytes/sec: repeatedly read a cached file segment."""
    if implementation == "kernel":
        world = World()
        client_host = world.host("client")
        server_host = world.host("server")
        KernelVMTP(client_host)
        KernelVMTP(server_host)

        def server():
            fd = yield Open("vmtp")
            yield Ioctl(fd, SockIoctl.BIND, 35)
            blob = bytes(segment_bytes)
            while True:
                yield Read(fd)
                yield Write(fd, blob)

        def client():
            fd = yield Open("vmtp")
            yield Ioctl(fd, SockIoctl.CONNECT, (server_host.address, 35))
            yield Write(fd, b"read")
            yield Read(fd)  # warm-up
            start = world.now
            received = 0
            while received < total_bytes:
                yield Write(fd, b"read")
                received += len((yield Read(fd)))
            return (world.now - start, received)

        server_host.spawn("vmtp-server", server())
        proc = client_host.spawn("vmtp-client", client())
        world.run_until_done(proc)

    elif implementation == "pf":
        world = World()
        client_host = world.host("client")
        server_host = world.host("server")
        client_host.install_packet_filter()
        server_host.install_packet_filter()

        def server():
            endpoint = VMTPServer(server_host, server_id=35, batching=batching)
            yield from endpoint.start()
            blob = bytes(segment_bytes)
            while True:
                request, reply = yield from endpoint.receive()
                yield from reply(blob)

        def client():
            endpoint = VMTPClient(
                client_host, client_id=7,
                server_station=server_host.address, server_id=35,
                batching=batching,
            )
            yield from endpoint.start()
            yield from endpoint.call(b"read")  # warm-up
            start = world.now
            received = 0
            while received < total_bytes:
                received += len((yield from endpoint.call(b"read")))
            return (world.now - start, received)

        server_host.spawn("vmtp-server", server())
        proc = client_host.spawn("vmtp-client", client())
        world.run_until_done(proc)

    elif implementation == "pf-userdemux":
        return _vmtp_user_demux(
            mode="bulk", total_bytes=total_bytes, segment_bytes=segment_bytes
        )

    else:
        raise ValueError(f"unknown VMTP implementation {implementation!r}")

    duration, received = proc.result
    return (received / 1024.0) / duration


# ---------------------------------------------------------------------------
# Table 6-6: byte streams (BSP vs kernel TCP); also feeds table 6-3's TCP row
# ---------------------------------------------------------------------------


def measure_tcp_bulk(
    *,
    mss: int | None = None,
    total_bytes: int = 256 * 1024,
    disk_ms_per_kbyte: float = 0.0,
) -> float:
    """Kernel TCP process-to-process KBytes/sec.

    ``disk_ms_per_kbyte`` > 0 models the FTP variant: the source does a
    synchronous disk read before each send (§6.4: file-sourced TCP runs
    at half the memory-sourced rate).
    """
    world = World()
    sender = world.host("sender")
    receiver = world.host("receiver")
    stack_a = sender.install_kernel_stack()
    stack_b = receiver.install_kernel_stack()
    link_stacks(stack_a, stack_b)
    KernelTCP(stack_a)
    KernelTCP(stack_b)
    payload = bytes(total_bytes)

    def server():
        fd = yield Open("tcp")
        yield Ioctl(fd, SockIoctl.BIND, 9)
        received = 0
        while True:
            chunk = yield Read(fd)
            if not chunk:
                return received
            received += len(chunk)

    def client():
        fd = yield Open("tcp")
        if mss is not None:
            yield Ioctl(fd, SockIoctl.SET_MSS, mss)
        yield Ioctl(fd, SockIoctl.CONNECT, (stack_b.ip_address, 9))
        start = world.now
        for offset in range(0, len(payload), 4096):
            chunk = payload[offset : offset + 4096]
            if disk_ms_per_kbyte:
                yield Sleep(disk_ms_per_kbyte * 1e-3 * len(chunk) / 1024.0)
            yield Write(fd, chunk)
        yield Close(fd)
        return start

    server_proc = receiver.spawn("tcp-sink", server())
    client_proc = sender.spawn("tcp-source", client())
    world.run_until_done(server_proc, client_proc)
    assert server_proc.result == total_bytes
    duration = world.now - client_proc.result
    return (total_bytes / 1024.0) / duration


def measure_bsp_bulk(
    *,
    total_bytes: int = 96 * 1024,
    disk_ms_per_kbyte: float = 0.0,
) -> float:
    """Packet-filter BSP process-to-process KBytes/sec."""
    world = World()
    sender = world.host("sender")
    receiver = world.host("receiver")
    sender.install_packet_filter()
    receiver.install_packet_filter()
    payload = bytes(total_bytes)

    def source():
        endpoint = BSPEndpoint(sender, local_socket=0x44)
        yield from endpoint.start()
        destination = PupAddress(
            net=1, host=receiver.address[-1], socket=0x35
        )
        start = world.now
        yield from endpoint.send_stream(
            receiver.address, destination, payload,
            disk_ms_per_kbyte=disk_ms_per_kbyte,
        )
        return world.now - start

    def sink():
        endpoint = BSPEndpoint(receiver, local_socket=0x35)
        yield from endpoint.start()
        data = yield from endpoint.recv_all()
        return len(data)

    receiver.spawn("bsp-sink", sink())
    source_proc = sender.spawn("bsp-source", source())
    world.run_until_done(source_proc)
    duration = source_proc.result
    return (total_bytes / 1024.0) / duration


# ---------------------------------------------------------------------------
# Table 6-7: Telnet
# ---------------------------------------------------------------------------


def measure_telnet(
    transport: str,
    display_cps: float,
    *,
    display_consumes_cpu: bool,
    characters: int = 3000,
) -> float:
    """Characters per second displayed at the user host."""
    from ..protocols.telnet import (
        telnet_bsp_server,
        telnet_bsp_user,
        telnet_tcp_server,
        telnet_tcp_user,
    )

    text = b"x" * characters
    world = World()
    server_host = world.host("server")
    user_host = world.host("user")
    display = DisplayDevice(display_cps, consumes_cpu=display_consumes_cpu)
    user_host.kernel.register_device("display", display)

    if transport == "bsp":
        server_host.install_packet_filter()
        user_host.install_packet_filter()
        user_proc = user_host.spawn("telnet-user", telnet_bsp_user(user_host))
        server_host.spawn(
            "telnet-server",
            telnet_bsp_server(server_host, user_host.address, text),
        )
    elif transport == "tcp":
        stack_a = server_host.install_kernel_stack()
        stack_b = user_host.install_kernel_stack()
        link_stacks(stack_a, stack_b)
        KernelTCP(stack_a)
        KernelTCP(stack_b)
        user_proc = user_host.spawn("telnet-user", telnet_tcp_user(user_host))
        server_host.spawn(
            "telnet-server",
            telnet_tcp_server(server_host, stack_b.ip_address, text),
        )
    else:
        raise ValueError(f"unknown telnet transport {transport!r}")

    world.run_until_done(user_proc)
    return user_proc.result / world.now


# ---------------------------------------------------------------------------
# Tables 6-5/6-8/6-9: receive-path cost, kernel vs user-level demux
# ---------------------------------------------------------------------------


def measure_receive_cost(
    demux: str,
    packet_bytes: int,
    *,
    batching: bool = False,
    count: int = 60,
    pace_seconds: float = 0.012,
    burst: int = 1,
) -> float:
    """Receiver-side milliseconds of work per received packet.

    A paced sender (a synthetic load, like the paper's) emits ``count``
    packets after the receiver has set up; the figure of merit is
    receiver-host CPU time consumed per packet — interrupt service,
    filtering, wakeups, context switches, syscalls and every copy on
    the way to the destination process.  ``burst`` > 1 with batching
    reproduces the table 6-9 configuration ("the results are about the
    same for four or more packets per batch").

    The per-packet cost is regenerated from the charge ledger: the sum
    of every attributed cost event on the receiving host from the
    moment sending starts, divided by the packet count.
    """
    world = World(ledger=True)
    sender = world.host("sender")
    receiver = world.host("receiver")
    sender.install_packet_filter()
    receiver.install_packet_filter()
    marks: list[int] = []  # ledger mark taken when sending starts

    def send_body():
        fd = yield Open("pf")
        if burst > 1:
            # Bursts leave in one vectored write (section 7's
            # write-batching) so they arrive back-to-back at wire speed
            # — that is what makes read batches form at the receiver.
            yield Ioctl(fd, PFIoctl.SETWRITEBATCH, True)
        frame = _payload(sender, packet_bytes, receiver.address)
        # Head start: let the receiver finish binding its filter.
        yield Sleep(0.05)
        marks.append(world.ledger.mark())
        sent = 0
        while sent < count:
            group = min(burst, count - sent)
            if group > 1:
                yield Write(fd, tuple([frame] * group))
            else:
                yield Write(fd, frame)
            sent += group
            yield Sleep(pace_seconds * burst)

    if demux == "kernel":

        def receive_body():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, _test_filter())
            yield Ioctl(fd, PFIoctl.SETBATCH, batching)
            yield Ioctl(fd, PFIoctl.SETQUEUELEN, 64)
            received = 0
            while received < count:
                batch = yield Read(fd)
                received += len(batch)
            return received

        dest = receiver.spawn("dest", receive_body())

    elif demux == "user":
        system = UserDemuxSystem(
            receiver, classify=lambda frame: "dest", batching=batching
        )
        inbox = system.add_destination("dest")

        def dest_body():
            received = 0
            while received < count:
                yield from inbox.read()
                received += 1
            return received

        dest = receiver.spawn("dest", dest_body())
        system.register(inbox, dest)
        demux_proc = receiver.spawn("demuxd", system.run())
        system.attach(demux_proc)

    else:
        raise ValueError(f"unknown demux {demux!r}")

    sender.spawn("sender", send_body())
    world.run_until_done(dest)
    spent = world.ledger.total_cost(host="receiver", start=marks[0])
    return spent / count * 1000.0


# ---------------------------------------------------------------------------
# Table 6-10: cost of interpreting packet filters
# ---------------------------------------------------------------------------


def filter_of_length(instructions: int, priority: int = 10) -> FilterProgram:
    """An always-true filter executing exactly ``instructions`` words.

    Zero instructions is modelled as the 1-word PUSHONE program (the
    paper's 0-length row is its baseline measurement artifact; the
    marginal cost per instruction is what the table is about).
    """
    if instructions <= 1:
        return FilterProgram(asm("PUSHONE"), priority=priority)
    items: list = []
    remaining = instructions
    items.append("PUSHONE")
    remaining -= 1
    while remaining >= 2:
        items.append("PUSHONE")
        items.append(("NOPUSH", "OR"))
        remaining -= 2
    if remaining:
        items.append(("NOPUSH", "NOP"))
    return FilterProgram(asm(*items), priority=priority)


def measure_filter_cost(
    instructions: int,
    *,
    packet_bytes: int = 128,
    count: int = 60,
) -> float:
    """Per-packet receive cost (ms) with one bound filter of the given
    length, batching enabled — the table 6-10 configuration.  Aggregated
    from the charge ledger, like :func:`measure_receive_cost`."""
    world = World(ledger=True)
    sender = world.host("sender")
    receiver = world.host("receiver")
    sender.install_packet_filter()
    receiver.install_packet_filter()
    marks: list[int] = []

    def send_body():
        fd = yield Open("pf")
        frame = _payload(sender, packet_bytes, receiver.address)
        yield Sleep(0.05)
        marks.append(world.ledger.mark())
        for _ in range(count):
            yield Write(fd, frame)
            yield Sleep(0.010)

    def receive_body():
        fd = yield Open("pf")
        yield Ioctl(fd, PFIoctl.SETFILTER, filter_of_length(instructions))
        yield Ioctl(fd, PFIoctl.SETBATCH, True)
        yield Ioctl(fd, PFIoctl.SETQUEUELEN, 64)
        received = 0
        while received < count:
            batch = yield Read(fd)
            received += len(batch)
        return received

    dest = receiver.spawn("dest", receive_body())
    sender.spawn("sender", send_body())
    world.run_until_done(dest)
    spent = world.ledger.total_cost(host="receiver", start=marks[0])
    return spent / count * 1000.0


# ---------------------------------------------------------------------------
# Figures 2-1/2-2/3-4/3-5: per-packet event counts under each model
# ---------------------------------------------------------------------------


def count_receive_events(
    demux: str,
    *,
    batching: bool = False,
    burst: int = 1,
    packet_bytes: int = 128,
    count: int = 60,
) -> dict[str, float]:
    """Per-packet receiver-host event counts — the quantities the
    paper's cost diagrams (figures 2-1, 2-2, 3-4, 3-5) draw as arrows.

    Returns context switches, system calls, data copies, domain
    crossings and wakeups per received packet.
    """
    world = World()
    sender = world.host("sender")
    receiver = world.host("receiver")
    sender.install_packet_filter()
    receiver.install_packet_filter()
    baseline: list = []

    def send_body():
        fd = yield Open("pf")
        if burst > 1:
            yield Ioctl(fd, PFIoctl.SETWRITEBATCH, True)
        frame = _payload(sender, packet_bytes, receiver.address)
        yield Sleep(0.05)
        baseline.append(receiver.kernel.stats.snapshot())
        sent = 0
        while sent < count:
            group = min(burst, count - sent)
            if group > 1:
                yield Write(fd, tuple([frame] * group))
            else:
                yield Write(fd, frame)
            sent += group
            yield Sleep(0.012 * burst)

    if demux == "kernel":

        def receive_body():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, _test_filter())
            yield Ioctl(fd, PFIoctl.SETBATCH, batching)
            yield Ioctl(fd, PFIoctl.SETQUEUELEN, 64)
            received = 0
            while received < count:
                received += len((yield Read(fd)))
            return received

        dest = receiver.spawn("dest", receive_body())
    elif demux == "user":
        system = UserDemuxSystem(
            receiver, classify=lambda frame: "dest", batching=batching
        )
        inbox = system.add_destination("dest")

        def dest_body():
            received = 0
            while received < count:
                yield from inbox.read()
                received += 1
            return received

        dest = receiver.spawn("dest", dest_body())
        system.register(inbox, dest)
        demux_proc = receiver.spawn("demuxd", system.run())
        system.attach(demux_proc)
    else:
        raise ValueError(f"unknown demux {demux!r}")

    sender.spawn("sender", send_body())
    world.run_until_done(dest)
    delta = receiver.kernel.stats.delta(baseline[0])
    per_packet = delta.per_packet(count)
    return {
        "context_switches": per_packet["context_switches"],
        "syscalls": per_packet["syscalls"],
        "copies": per_packet["copies"],
        "domain_crossings": per_packet["domain_crossings"],
        "wakeups": per_packet["wakeups"],
        "cpu_ms": per_packet["cpu_time"] * 1000.0,
    }


def count_stream_crossings(transport: str, total_bytes: int = 64 * 1024) -> dict:
    """Figure 2-3: kernel-resident protocols confine overhead packets.

    Runs a reliable bulk stream and reports, for the *receiving* host,
    frames handled per user-visible read and domain crossings per
    KByte delivered — kernel TCP confines data+ack packets to the
    kernel; user-level BSP surfaces every one of them to user code.
    """
    if transport == "tcp":
        world = World()
        sender = world.host("sender")
        receiver = world.host("receiver")
        stack_a = sender.install_kernel_stack()
        stack_b = receiver.install_kernel_stack()
        link_stacks(stack_a, stack_b)
        KernelTCP(stack_a)
        KernelTCP(stack_b)
        payload = bytes(total_bytes)

        def server():
            fd = yield Open("tcp")
            yield Ioctl(fd, SockIoctl.BIND, 9)
            received = 0
            while True:
                chunk = yield Read(fd)
                if not chunk:
                    return received
                received += len(chunk)

        def client():
            fd = yield Open("tcp")
            yield Ioctl(fd, SockIoctl.CONNECT, (stack_b.ip_address, 9))
            for offset in range(0, len(payload), 4096):
                yield Write(fd, payload[offset : offset + 4096])
            yield Close(fd)

        sink = receiver.spawn("sink", server())
        sender.spawn("source", client())
        world.run_until_done(sink)
    elif transport == "bsp":
        world = World()
        sender = world.host("sender")
        receiver = world.host("receiver")
        sender.install_packet_filter()
        receiver.install_packet_filter()
        payload = bytes(total_bytes)

        def source():
            endpoint = BSPEndpoint(sender, local_socket=0x44)
            yield from endpoint.start()
            yield from endpoint.send_stream(
                receiver.address,
                PupAddress(net=1, host=receiver.address[-1], socket=0x35),
                payload,
            )

        def sink():
            endpoint = BSPEndpoint(receiver, local_socket=0x35)
            yield from endpoint.start()
            data = yield from endpoint.recv_all()
            return len(data)

        sink = receiver.spawn("sink", sink())
        sender.spawn("source", source())
        world.run_until_done(sink)
    else:
        raise ValueError(f"unknown transport {transport!r}")

    stats = receiver.kernel.stats
    kbytes = total_bytes / 1024.0
    return {
        "frames_received": stats.frames_received,
        "syscalls": stats.syscalls,
        "domain_crossings": stats.domain_crossings,
        "crossings_per_kbyte": stats.domain_crossings / kbytes,
        "syscalls_per_frame": stats.syscalls / max(1, stats.frames_received),
    }


# ---------------------------------------------------------------------------
# §6.1: kernel per-packet processing profile
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KernelProfile:
    """What the §6.1 gprof study reported, measured on our kernel."""

    pf_ms_per_packet: float          #: PF kernel CPU per PF packet
    pf_filter_fraction: float        #: share spent evaluating predicates
    mean_predicates_tested: float
    ip_ms_per_packet: float          #: full IP->UDP input path CPU
    ip_layer_only_ms: float          #: IP layer alone


def kernel_profile(
    *,
    ports: int = 12,
    packets: int = 120,
    packet_bytes: int = 128,
) -> KernelProfile:
    """Run a mixed workload and profile kernel CPU per packet.

    ``ports`` processes with distinct single-field filters receive a
    uniform traffic mix (so the average packet is tested against about
    half the active filters, modulo the priority reordering the paper
    describes), while a parallel UDP flow on a second host pair
    exercises the kernel IP input path.  Every number in the returned
    profile is aggregated from the charge ledger's attributed cost
    events — the simulation's gprof — rather than recomputed from the
    cost-model constants.
    """
    from ..sim.ledger import Primitive

    world = World(ledger=True)
    sender = world.host("sender")
    receiver = world.host("receiver")
    sender.install_packet_filter()
    receiver.install_packet_filter()

    # --- the PF side ---
    def listener(index: int):
        def body():
            fd = yield Open("pf")
            program = compile_expr(
                (word(6) == TEST_ETHERTYPE) & (word(7) == index),
                priority=10,
            )
            yield Ioctl(fd, PFIoctl.SETFILTER, program)
            yield Ioctl(fd, PFIoctl.SETQUEUELEN, 64)
            taken = 0
            while True:
                batch = yield Read(fd)
                taken += len(batch)

        return body()

    for index in range(ports):
        receiver.spawn(f"listener-{index}", listener(index))

    def pf_sender():
        fd = yield Open("pf")
        for sequence in range(packets):
            index = sequence % ports
            body = index.to_bytes(2, "big") + bytes(packet_bytes - 16 - 2)
            frame = sender.link.frame(
                receiver.address, sender.address, TEST_ETHERTYPE, body
            )
            yield Write(fd, frame)
            yield Sleep(0.008)
        return world.now

    # --- the kernel IP/UDP side (its own host pair, so the PF numbers
    # above and the IP numbers below never share a ledger scope) ---
    ip_sender = world.host("ip-sender")
    ip_receiver = world.host("ip-receiver")
    stack_a = ip_sender.install_kernel_stack()
    stack_b = ip_receiver.install_kernel_stack()
    link_stacks(stack_a, stack_b)
    KernelUDP(stack_a)
    KernelUDP(stack_b)

    def udp_sender():
        fd = yield Open("udp")
        yield Ioctl(fd, SockIoctl.CONNECT, (stack_b.ip_address, 9))
        data = bytes(max(0, packet_bytes - ip_sender.link.header_length - 28))
        for _ in range(packets // 3):
            yield Write(fd, data)
            yield Sleep(0.008)

    send_proc = sender.spawn("pf-sender", pf_sender())
    udp_proc = ip_sender.spawn("udp-sender", udp_sender())
    world.run_until_done(send_proc, udp_proc)
    world.run(until=world.now + 0.2)

    ledger = world.ledger
    pf_events = ledger.breakdown("receiver")

    def cost_of(*names: str) -> float:
        return sum(pf_events[n]["cost"] for n in names if n in pf_events)

    # Everything the kernel spends on a PF packet between the interrupt
    # and the reader's wakeup — the §6.1 "packet filter" line.
    seen = pf_events[Primitive.FRAME_RX.value]["quantity"]
    filter_ms = cost_of(
        Primitive.FILTER_PREDICATE.value, Primitive.FILTER_INSTRUCTION.value
    ) * 1000.0
    pf_total_ms = filter_ms + cost_of(
        Primitive.INTERRUPT.value,
        Primitive.BUFFER.value,
        Primitive.PF_FIXED.value,
        Primitive.MICROTIME.value,
        Primitive.WAKEUP.value,
    ) * 1000.0
    pf_ms = pf_total_ms / seen
    pf_filter_fraction = filter_ms / pf_total_ms
    predicates = pf_events[Primitive.FILTER_PREDICATE.value]["quantity"]

    # "This includes all protocol processing up to the TCP and UDP
    # layers" — protocol processing only, not interrupt service.
    ip_events = ledger.breakdown("ip-receiver")
    datagrams = ip_events[Primitive.IP_INPUT.value]["events"]
    ip_layer_ms = ip_events[Primitive.IP_INPUT.value]["cost"] * 1000.0
    transport_ms = ip_events[Primitive.TRANSPORT_INPUT.value]["cost"] * 1000.0

    return KernelProfile(
        pf_ms_per_packet=pf_ms,
        pf_filter_fraction=pf_filter_fraction,
        mean_predicates_tested=predicates / seen,
        ip_ms_per_packet=(ip_layer_ms + transport_ms) / datagrams,
        ip_layer_only_ms=ip_layer_ms / datagrams,
    )


# ---------------------------------------------------------------------------
# Chaos soaks: the receive path under burst loss, reordering, corruption
# ---------------------------------------------------------------------------

CHAOS_SEEDS = (11, 23, 37, 41, 59)
"""Fixed soak seeds: every run of the matrix replays exactly."""

ACCEPTANCE_CHAOS = ChaosConfig(
    burst_enter_rate=0.08,
    burst_exit_rate=0.24,
    burst_loss_rate=0.85,
    reorder_rate=0.15,
    reorder_jitter=3e-3,
    corrupt_rate=0.05,
    duplicate_rate=0.05,
)
"""The hardening acceptance profile: ~21% expected frame loss in
bursts, plus reordering, single-bit corruption and duplication.  Every
protocol must still complete byte-identically under it."""

SOAK_RETRIES = 24
"""Retry budget for soak transfers: bursts of ~85% loss need patience,
and an abort below this budget is a receive-path bug, not bad luck."""


def _ledger_report(world: World, host: str) -> dict:
    """The observability block a ledger-enabled soak adds to its result:
    where packets were lost (``drops``), the per-stage receive-path
    latency distribution (``stage_percentiles``), and the attributed
    cost breakdown for the interesting host."""
    ledger = world.ledger
    return {
        "world": world,
        "ledger": ledger,
        "drops": ledger.drop_summary(),
        "stage_percentiles": ledger.stage_percentiles(host=host),
        "breakdown": ledger.breakdown(host),
    }


def _telemetry_report(world: World) -> dict:
    """The block a telemetry-armed run adds: the sampler itself (all
    series readable), and the structured alert log."""
    return {
        "world": world,
        "telemetry": world.telemetry,
        "alerts": list(world.telemetry.alerts),
    }


def run_bsp_chaos(
    *,
    chaos: ChaosConfig = ACCEPTANCE_CHAOS,
    seed: int = 0,
    payload_bytes: int = 24 * 1024,
    adaptive_rto: bool = True,
    ack_direction_only: bool = False,
    ledger: bool = False,
    telemetry: bool = False,
) -> dict:
    """One BSP file transfer through a chaotic segment.

    ``ack_direction_only`` applies the profile asymmetrically (the
    per-sender override): clean data path, chaotic ack path.  Returns
    a dict with ``intact`` (bytes survived exactly), the
    sender/receiver :class:`~repro.protocols.bsp.StreamStats`, and the
    elapsed simulated time.  ``ledger=True`` additionally traces every
    charge and packet span, adding the :func:`_ledger_report` keys.
    """
    world = World(
        seed=seed,
        chaos=None if ack_direction_only else chaos,
        ledger=ledger,
        telemetry=telemetry,
    )
    sender = world.host("sender")
    receiver = world.host("receiver")
    if ack_direction_only:
        world.segment.set_chaos(chaos, sender=receiver.address)
    sender.install_packet_filter()
    receiver.install_packet_filter()
    payload = bytes((seed + index) % 251 for index in range(payload_bytes))
    endpoints = {}

    def source():
        endpoint = BSPEndpoint(
            sender, local_socket=0x44,
            adaptive_rto=adaptive_rto, max_retries=SOAK_RETRIES,
        )
        endpoints["sender"] = endpoint
        yield from endpoint.start()
        destination = PupAddress(
            net=1, host=receiver.address[-1], socket=0x35
        )
        yield from endpoint.send_stream(
            receiver.address, destination, payload
        )

    def sink():
        endpoint = BSPEndpoint(
            receiver, local_socket=0x35,
            adaptive_rto=adaptive_rto, max_retries=SOAK_RETRIES,
        )
        endpoints["receiver"] = endpoint
        yield from endpoint.start()
        data = yield from endpoint.recv_all()
        # Dally past the sender's longest backed-off retransmission gap
        # so a lost final ack cannot strand it (see BSPEndpoint.linger).
        yield from endpoint.linger()
        return data

    sink_proc = receiver.spawn("bsp-sink", sink())
    source_proc = sender.spawn("bsp-source", source())
    world.run_until_done(source_proc, sink_proc)
    result = {
        "intact": sink_proc.result == payload,
        "delivered_bytes": len(sink_proc.result),
        "duration": world.now,
        "sender": endpoints["sender"].stats,
        "receiver": endpoints["receiver"].stats,
        "segment_lost": world.segment.frames_lost,
        "segment_corrupted": world.segment.frames_corrupted,
    }
    if ledger:
        result.update(_ledger_report(world, "receiver"))
    if telemetry:
        result.update(_telemetry_report(world))
    return result


def run_vmtp_chaos(
    *,
    chaos: ChaosConfig = ACCEPTANCE_CHAOS,
    seed: int = 0,
    calls: int = 12,
    segment_bytes: int = 8 * 1024,
    adaptive_rto: bool = True,
    ledger: bool = False,
    telemetry: bool = False,
) -> dict:
    """A VMTP bulk-read exchange (client pulls ``calls`` segments)
    through a chaotic segment; replies must arrive byte-identical."""
    world = World(
        seed=seed, chaos=chaos, ledger=ledger, telemetry=telemetry
    )
    client_host = world.host("client")
    server_host = world.host("server")
    client_host.install_packet_filter()
    server_host.install_packet_filter()
    blob = bytes((seed + index) % 253 for index in range(segment_bytes))
    clients = {}

    def server():
        endpoint = VMTPServer(server_host, server_id=35)
        yield from endpoint.start()
        while True:
            request, reply = yield from endpoint.receive()
            yield from reply(blob)

    def client():
        endpoint = VMTPClient(
            client_host, client_id=7,
            server_station=server_host.address, server_id=35,
            adaptive_rto=adaptive_rto, max_retries=SOAK_RETRIES,
        )
        clients["client"] = endpoint
        yield from endpoint.start()
        intact = 0
        for _ in range(calls):
            response = yield from endpoint.call(b"read")
            if response == blob:
                intact += 1
        return intact

    server_host.spawn("vmtp-server", server())
    proc = client_host.spawn("vmtp-client", client())
    world.run_until_done(proc)
    endpoint = clients["client"]
    result = {
        "intact": proc.result == calls,
        "calls_intact": proc.result,
        "calls": calls,
        "duration": world.now,
        "retries": endpoint.retries,
        "corrupt_dropped": endpoint.corrupt_dropped,
        "segment_lost": world.segment.frames_lost,
    }
    if ledger:
        result.update(_ledger_report(world, "client"))
    if telemetry:
        result.update(_telemetry_report(world))
    return result


def run_rarp_chaos(
    *,
    chaos: ChaosConfig = ACCEPTANCE_CHAOS,
    seed: int = 0,
    ledger: bool = False,
    telemetry: bool = False,
) -> dict:
    """A diskless RARP boot through a chaotic segment.

    The ARP wire format carries no checksum, so corruption is forced
    off for this protocol: a flipped bit in the address field would be
    indistinguishable from a legitimate (different) answer.  The
    retry loop still has to survive burst loss, reordering and
    duplication.
    """
    from dataclasses import replace

    from ..protocols.rarp import RARPServer, rarp_discover

    chaos = replace(chaos, corrupt_rate=0.0)
    world = World(
        seed=seed, chaos=chaos, ledger=ledger, telemetry=telemetry
    )
    server_host = world.host("rarp-server")
    client_host = world.host("client")
    server_host.install_packet_filter()
    client_host.install_packet_filter()
    expected_ip = 0x0A000007
    server = RARPServer(server_host, {client_host.address: expected_ip})
    server_host.spawn("rarpd", server.run())

    def boot():
        return (
            yield from rarp_discover(
                client_host, retries=SOAK_RETRIES, timeout=0.25
            )
        )

    proc = client_host.spawn("diskless", boot())
    world.run_until_done(proc)
    result = {
        "intact": proc.result == expected_ip,
        "ip": proc.result,
        "duration": world.now,
        "segment_lost": world.segment.frames_lost,
    }
    if ledger:
        result.update(_ledger_report(world, "client"))
    if telemetry:
        result.update(_telemetry_report(world))
    return result


def run_pup_echo_chaos(
    *,
    chaos: ChaosConfig = ACCEPTANCE_CHAOS,
    seed: int = 0,
    count: int = 8,
    ledger: bool = False,
    telemetry: bool = False,
) -> dict:
    """Pup echo pings through a chaotic segment; every echo must come
    back with its payload intact (the Pup checksum screens corruption)."""
    from ..protocols.pup_echo import pup_echo_server, pup_ping

    world = World(
        seed=seed, chaos=chaos, ledger=ledger, telemetry=telemetry
    )
    server_host = world.host("echo-server")
    client_host = world.host("client")
    server_host.install_packet_filter()
    client_host.install_packet_filter()
    server_host.spawn("echod", pup_echo_server(server_host))

    def ping():
        return (
            yield from pup_ping(
                client_host, server_host.address,
                count=count, retries=SOAK_RETRIES,
            )
        )

    proc = client_host.spawn("pinger", ping())
    world.run_until_done(proc)
    result = {
        "intact": len(proc.result) == count,
        "round_trips": proc.result,
        "duration": world.now,
        "segment_lost": world.segment.frames_lost,
    }
    if ledger:
        result.update(_ledger_report(world, "client"))
    if telemetry:
        result.update(_telemetry_report(world))
    return result


def measure_spurious_retransmissions(
    *,
    adaptive_rto: bool,
    seed: int = 0,
    calls: int = 16,
    service_time: float = 0.18,
    segment_bytes: int = 2048,
) -> int:
    """Request retries against a slow-but-reliable VMTP server.

    The server takes ``service_time`` (think: a disk seek) to answer —
    longer than the historical fixed 100 ms retry timeout — and the
    response path carries seeded reordering jitter (the per-sender
    chaos override; no loss anywhere).  Every answer arrives intact,
    so every retry counted here re-asks a question the server is
    already working on: pure spurious load.  The fixed timer fires on
    every single call forever; the adaptive timer eats the first
    round trip, learns the path, and stops.
    """
    chaos = ChaosConfig(reorder_rate=0.3, reorder_jitter=0.1)
    world = World(seed=seed)
    client_host = world.host("client")
    server_host = world.host("server")
    world.segment.set_chaos(chaos, sender=server_host.address)
    client_host.install_packet_filter()
    server_host.install_packet_filter()
    blob = bytes(index % 249 for index in range(segment_bytes))
    clients = {}

    def server():
        endpoint = VMTPServer(server_host, server_id=35)
        yield from endpoint.start()
        while True:
            request, reply = yield from endpoint.receive()
            yield Sleep(service_time)
            yield from reply(blob)

    def client():
        endpoint = VMTPClient(
            client_host, client_id=7,
            server_station=server_host.address, server_id=35,
            adaptive_rto=adaptive_rto, max_retries=SOAK_RETRIES,
        )
        clients["client"] = endpoint
        yield from endpoint.start()
        for _ in range(calls):
            response = yield from endpoint.call(b"read")
            assert response == blob, "loss-free exchange must stay intact"
        return endpoint.retries

    server_host.spawn("vmtp-server", server())
    proc = client_host.spawn("vmtp-client", client())
    world.run_until_done(proc)
    return proc.result


# ---------------------------------------------------------------------------
# Receive livelock: interrupt collapse vs polling plateau
# ---------------------------------------------------------------------------


def receive_saturation_pps(costs=None, frame_bytes: int = 128) -> float:
    """Estimated receive-path saturation rate, packets/second.

    The offered-load axis of the livelock benchmark is expressed as
    multiples of this: the rate at which the full per-packet receive
    cost (interrupt, buffer, filter, copy, syscall, context switch,
    wakeup) exactly consumes the CPU.
    """
    from ..sim.costs import MICROVAX_II

    costs = costs or MICROVAX_II
    per_packet = (
        costs.interrupt_service
        + costs.buffer_cost(frame_bytes)
        + costs.pf_fixed
        + costs.filter_cost(1, 4)
        + costs.copy_cost(frame_bytes)
        + costs.syscall
        + costs.context_switch
        + costs.wakeup
    )
    return 1.0 / per_packet


def run_overload_storm(
    *,
    mode: str = "interrupt",
    offered_multiplier: float = 1.0,
    warmup: float = 0.25,
    duration: float = 1.0,
    frame_bytes: int = 128,
    input_queue_limit: int = 64,
    queue_limit: int = 32,
    pool_capacity: int = 192,
    port_share: int = 64,
    policy=None,
    kill_reader_at: float | None = None,
    telemetry: bool = False,
) -> dict:
    """A packet storm against one receiver: the livelock experiment.

    A zero-cost blaster host offers ``offered_multiplier`` times the
    receiver's saturation rate for ``warmup + duration`` seconds while
    one process reads from a packet-filter port.

    ``mode="interrupt"`` is the classic ungated path: every arrival
    charges its receive interrupt immediately (infinite interrupt
    capacity), so past saturation the CPU cursor races unboundedly
    ahead of the wire and reads complete ever later — goodput measured
    inside the window collapses.  ``mode="polling"`` installs an
    :class:`~repro.sim.overload.RxPolicy` and a shared
    :class:`~repro.sim.overload.BufferPool`: CPU-gated interrupts,
    budgeted polling past the ring watermark, early shedding at
    admission, and a guaranteed user CPU share — goodput holds a flat
    plateau no matter the offered load.

    Goodput is derived from ledger windows: delivered packet spans
    whose syscall-return stage lands inside ``[warmup, warmup +
    duration)``.  ``kill_reader_at`` kills the reading process
    mid-storm (``SimKernel.kill``); the returned ``pool_audit`` must
    come back empty regardless — the crash-safety acceptance check.
    """
    from ..sim.costs import FREE
    from ..sim.ledger import STAGE_SYSCALL_RETURN
    from ..sim.overload import BufferPool, RxPolicy

    if mode not in ("interrupt", "polling"):
        raise ValueError(f"unknown storm mode {mode!r}")
    world = World(ledger=True, telemetry=telemetry)
    blaster = world.host("blaster", costs=FREE)
    receiver = world.host(
        "receiver", input_queue_limit=input_queue_limit
    )
    blaster.install_packet_filter()
    receiver.install_packet_filter(flow_cache=True)
    pool = None
    if mode == "polling":
        if policy is None:
            policy = RxPolicy(
                poll_enter=8,
                poll_quota=16,
                user_share=0.25,
                shed_watermark=input_queue_limit // 2,
            )
        pool = BufferPool(pool_capacity, port_share=port_share)
        receiver.enable_overload(policy=policy, pool=pool)

    saturation = receive_saturation_pps(world.costs, frame_bytes)
    offered_pps = saturation * offered_multiplier
    gap = 1.0 / offered_pps
    t_end = warmup + duration + 0.05
    frame = _payload(blaster, frame_bytes, receiver.address)

    def blast():
        fd = yield Open("pf")
        yield Sleep(0.02)  # let the reader bind its filter first
        while world.now < t_end:
            yield Write(fd, frame)
            yield Sleep(gap)

    def reader():
        fd = yield Open("pf")
        yield Ioctl(fd, PFIoctl.SETFILTER, _test_filter())
        yield Ioctl(fd, PFIoctl.SETBATCH, True)
        yield Ioctl(fd, PFIoctl.SETQUEUELEN, queue_limit)
        while True:
            yield Read(fd)

    reader_proc = receiver.spawn("reader", reader())
    blaster.spawn("blaster", blast())
    if kill_reader_at is not None:
        world.scheduler.schedule_at(
            kill_reader_at, receiver.kernel.kill, reader_proc
        )
    receiver_baseline = receiver.kernel.stats.snapshot()
    started_at = world.now
    # Run to quiescence: the blaster stops at t_end, the backlog drains
    # (post-window deliveries don't contaminate the measurement), and
    # only then is the pool audit meaningful.
    world.run()
    elapsed = max(world.now - started_at, 1e-12)
    receiver_rates = receiver.kernel.stats.rates(receiver_baseline, elapsed)

    ledger = world.ledger
    delivered_in_window = 0
    for span in ledger.spans_for("receiver"):
        if span.outcome != "delivered":
            continue
        done = span.stage_time(STAGE_SYSCALL_RETURN)
        if done is not None and warmup <= done < warmup + duration:
            delivered_in_window += 1

    nic = receiver.nic
    return {
        "mode": mode,
        "offered_multiplier": offered_multiplier,
        "saturation_pps": saturation,
        "offered_pps": offered_pps,
        "goodput_pps": delivered_in_window / duration,
        "delivered_in_window": delivered_in_window,
        "drops": ledger.drop_summary(),
        "pool": pool,
        "pool_audit": pool.audit() if pool is not None else {},
        "nic_polls": nic.polls,
        "nic_frames_polled": nic.frames_polled,
        "nic_poll_mode_entries": nic.poll_mode_entries,
        "nic_frames_shed": nic.frames_shed,
        "nic_frames_nobuf": nic.frames_nobuf,
        "nic_frames_dropped": nic.frames_dropped,
        "reader": reader_proc,
        "receiver_host": receiver,
        "receiver_rates": receiver_rates,
        "duration": world.now,
        "world": world,
        "ledger": ledger,
        "telemetry": world.telemetry,
        "alerts": (
            [] if world.telemetry is None else list(world.telemetry.alerts)
        ),
    }


# ---------------------------------------------------------------------------
# Flow-cache miss storm (shardable): millions of short flows
# ---------------------------------------------------------------------------


def run_flow_storm(
    *,
    segments: int = 2,
    shards: int = 1,
    seed: int = 0,
    duration: float = 0.5,
    flows: int = 256,
    cache_size: int = 64,
    offered_multiplier: float = 2.0,
    bridge_delay: float = 2e-3,
    ledger: bool = True,
    **options,
) -> dict:
    """The flow-cache miss storm, on a sharded multi-segment topology.

    Each of ``segments`` Ethernets runs a blaster cycling through
    ``flows`` spoofed source addresses against a receiver whose flow
    cache holds only ``cache_size`` entries — a deterministic rendition
    of the short-flow regime where a direct-mapped classification memo
    thrashes — while a slice of the traffic crosses the bridges.
    ``shards`` partitions the segments over that many worker processes;
    the result is bitwise identical for any value (the sharding
    difftest pins this).

    Returns the merged :class:`~repro.sim.orchestrator.TopologyResult`
    plus aggregated cache/goodput headline numbers.
    """
    from ..sim.orchestrator import run_topology
    from .topologies import flow_storm_topology

    spec = flow_storm_topology(
        segments=segments,
        seed=seed,
        duration=duration,
        flows=flows,
        cache_size=cache_size,
        offered_multiplier=offered_multiplier,
        bridge_delay=bridge_delay,
        ledger=ledger,
        **options,
    )
    result = run_topology(spec, shards=shards)
    caches = [report["flow_cache"] for report in result.reports.values()]
    hits = sum(cache["hits"] for cache in caches)
    misses = sum(cache["misses"] for cache in caches)
    lookups = hits + misses
    frames_received = sum(
        report["received"] for report in result.reports.values()
    )
    return {
        "result": result,
        "segments": segments,
        "shards": result.shards,
        "duration": duration,
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_rate": (hits / lookups) if lookups else 0.0,
        "frames_received": frames_received,
        "frames_forwarded": sum(
            wire["frames_forwarded"] for wire in result.wire.values()
        ),
        "events_fired": result.events_fired,
        "windows": result.windows,
        "wall_seconds": result.wall_seconds,
        "sim_pps": frames_received / duration if duration else 0.0,
    }


def run_partition_storm(
    *,
    segments: int = 2,
    shards: int = 1,
    seed: int = 0,
    duration: float = 1.2,
    partition_at: float = 0.2,
    heal_at: float = 0.55,
    bridge_delay: float = 2e-3,
    recovery=None,
    hazards: dict | None = None,
    timeout: float | None = None,
    **options,
) -> dict:
    """An adaptive-RTO backoff storm across a healing partition.

    A VMTP client on ``lan0`` calls a server on the chain's far end
    while the middle bridge link goes down over
    ``[partition_at, heal_at)``.  Requests in flight during the outage
    are dropped under ``dropped_link_down``; the client's Jacobson
    timer backs off exponentially (firing the ``rto_backoff_storm``
    watchdog) until a backed-off retry lands on the healed link.  The
    cross-segment ``partition:*`` watchdog must fire during the outage
    — and the per-segment livelock watchdogs must *not*: local traffic
    stays healthy throughout, which is exactly the signature that
    separates a partition from an overload.

    Returns the merged result plus the alert groups and drop counts the
    acceptance checks care about.
    """
    from ..sim.orchestrator import run_topology
    from .topologies import partition_storm_topology

    spec = partition_storm_topology(
        segments=segments,
        seed=seed,
        duration=duration,
        partition_at=partition_at,
        heal_at=heal_at,
        bridge_delay=bridge_delay,
        **options,
    )
    result = run_topology(
        spec,
        shards=shards,
        recovery=recovery,
        hazards=hazards,
        timeout=timeout,
    )
    alerts = list(result.telemetry.alerts) if result.telemetry else []
    dropped_link_down = sum(
        wire.get("frames_dropped_link_down", 0)
        for wire in result.wire.values()
    )
    vmtp = {
        name: report["vmtp"]
        for name, report in result.reports.items()
        if "vmtp" in report
    }
    return {
        "result": result,
        "segments": segments,
        "shards": result.shards,
        "duration": duration,
        "partition_alerts": [
            alert for alert in alerts
            if str(alert.get("rule", "")).startswith("partition:")
        ],
        "backoff_alerts": [
            alert for alert in alerts
            if alert.get("rule") == "rto_backoff_storm"
        ],
        "livelock_alerts": [
            alert for alert in alerts
            if alert.get("rule") == "receive_livelock"
        ],
        "restart_alerts": [
            alert for alert in alerts
            if alert.get("rule") == "shard_restart"
        ],
        "dropped_link_down": dropped_link_down,
        "vmtp": vmtp,
        "restarts": result.restarts,
        "windows": result.windows,
        "wall_seconds": result.wall_seconds,
    }
