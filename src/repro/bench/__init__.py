"""Benchmark harness: scenarios, table rendering, result recording."""

from .scenarios import (
    count_receive_events,
    count_stream_crossings,
    kernel_profile,
    measure_bsp_bulk,
    measure_filter_cost,
    measure_receive_cost,
    measure_send_cost,
    measure_tcp_bulk,
    measure_telnet,
    measure_vmtp_bulk,
    measure_vmtp_minimal,
)
from .tables import Row, record_rows, render_table, within_factor

__all__ = [
    "measure_send_cost",
    "measure_vmtp_minimal",
    "measure_vmtp_bulk",
    "measure_tcp_bulk",
    "measure_bsp_bulk",
    "measure_telnet",
    "measure_receive_cost",
    "measure_filter_cost",
    "count_receive_events",
    "count_stream_crossings",
    "kernel_profile",
    "Row",
    "render_table",
    "record_rows",
    "within_factor",
]
