"""Regenerate EXPERIMENTS.md from a benchmark run.

Usage::

    pytest benchmarks/ --benchmark-only     # writes bench_results.json
    python -m repro.bench.report            # writes EXPERIMENTS.md

The tables record paper-vs-measured for every experiment the paper's
evaluation section defines; the narrative preamble and per-experiment
titles live here.
"""

from __future__ import annotations

import json
from pathlib import Path

from .tables import RESULTS_PATH

TITLES = {
    "table-6-1": "Table 6-1 — Cost of sending packets",
    "section-6-1": "Section 6.1 — Kernel per-packet processing time",
    "table-6-2": "Table 6-2 — VMTP, minimal round-trip operation",
    "table-6-3": "Table 6-3 — VMTP, bulk data transfer",
    "table-6-4": "Table 6-4 — Effect of received-packet batching",
    "table-6-5": "Table 6-5 — Effect of user-level demultiplexing on VMTP",
    "table-6-6": "Table 6-6 / §6.4 — Byte-stream throughput (BSP vs TCP)",
    "table-6-7": "Table 6-7 — Telnet output rates",
    "table-6-8": "Table 6-8 — Per-packet cost of user-level demultiplexing",
    "table-6-9": "Table 6-9 — Same, with received-packet batching",
    "table-6-10": "Table 6-10 — Cost of interpreting packet filters",
    "figure-2-1-2-2": "Figures 2-1/2-2 — Demultiplexing cost diagrams, measured",
    "figure-2-3": "Figure 2-3 — Kernel residency confines overhead packets",
    "figure-3-4-3-5": "Figures 3-4/3-5 — Batching amortizes per-packet events",
    "figure-3-6": "Figure 3-6 — The filter language (conformance)",
    "figure-3-8-3-9": "Figures 3-8/3-9 — The example filters & short-circuiting",
    "figure-4-1": "Figure 4-1 — The filter application loop at scale",
    "figure-3-1-3-3": "Figures 3-1/3-3 — Coexistence with kernel protocols",
    "ablation-section-7": "Section 7 ablations — fast paths, wall-clock",
    "section-6-5-break-even": "Section 6.5.3 — Kernel-filtering break-even",
    "ablation-nit": "Ablation — Single-field NIT vs the packet filter",
    "ablation-cheap-switches": "Ablation — §2: cheap context switches",
    "ablation-write-batching": "Ablation — §7's write batching, measured",
    "section-3-bind-cost": "Section 3 — Filter binding cost",
    "perf-demux-throughput": (
        "Perf — Demux throughput by engine (fused + flow cache)"
    ),
    "perf-ruleset-scale": (
        "Perf — 5-tuple ACL ruleset scale (100 / 1000 / 10000 rules)"
    ),
    "perf-ruleset-adversarial": (
        "Perf — Adversarial ruleset (shared discriminant; dispatch "
        "tree cannot split)"
    ),
    "shard_scaling_pps": (
        "Perf — Sharded topology scaling (events/sec vs worker "
        "processes; bitwise-identical results)"
    ),
    "chaos-spurious-rto": (
        "Chaos — Spurious retransmissions, fixed vs adaptive timer"
    ),
    "overload-livelock": (
        "Overload — Goodput under storm, interrupt collapse vs "
        "polling plateau"
    ),
    "recovery-checkpoint-interval": (
        "Recovery — Windows replayed and stall vs shard checkpoint "
        "interval (kill-a-shard, bitwise-equal finish)"
    ),
    "partition-goodput-dip": (
        "Chaos — Bridged goodput collapse and recovery across a "
        "healing link partition"
    ),
}

PREAMBLE = """\
# EXPERIMENTS — paper vs. measured

Reproduction of every table and figure in the evaluation of
Mogul/Rashid/Accetta, *The Packet Filter* (SOSP 1987).  Regenerated
from an actual benchmark run by:

```
pytest benchmarks/ --benchmark-only   # runs everything, records results
python -m repro.bench.report          # rewrites this file
```

**How to read the numbers.**  The paper's measurements come from VAX
hardware in 1987; ours come from a deterministic discrete-event
simulation whose cost model is calibrated to the handful of primitives
the paper itself measured (0.4 ms context switch, 0.5 ms + 1 ms/KByte
copies, 0.49/1.77 ms IP input, the table 6-10 filter-instruction slope
— see `repro/sim/costs.py`).  Composite numbers — round-trip times,
throughputs, break-evens — are *outputs* of running real protocol code
over those primitives, not inputs, so agreement in shape (orderings,
ratios, crossovers) is the reproduction claim, and each benchmark
asserts those shapes.  The `meas/paper` column shows how the absolutes
landed anyway.

Known, deliberate divergences are footnoted per experiment; the
recurring ones:

* **Table 6-5 bulk (paper 4x, ours >2x)** — the paper blames much of
  its 4x on "the poor IPC facilities in 4.3BSD"; our simulated pipe is
  a fair byte-stream pipe, so the demultiplexing process pays only the
  honest switches/copies/syscalls.
* **Table 6-9's 1.9 ms user-demux row** — the paper's own number beats
  its kernel row; we reproduce the stated claims (batching shrinks the
  penalty, a gap remains) rather than that artifact.
* **Figure paper-columns** — figures 2-x/3-x are diagrams; where a
  "paper" value appears for them it is the analytical expectation the
  figure's caption/text implies, noted per table.
"""


def _number(value: float) -> str:
    """Plain decimal rendering at a sensible precision (no 1.78e+03)."""
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.2f}".rstrip("0").rstrip(".")
    return f"{value:.3f}".rstrip("0").rstrip(".")


def generate(results_path: str = RESULTS_PATH) -> str:
    path = Path(results_path)
    if not path.exists():
        raise SystemExit(
            f"{results_path} not found — run "
            f"`pytest benchmarks/ --benchmark-only` first"
        )
    data = json.loads(path.read_text())

    lines = [PREAMBLE]
    order = [key for key in TITLES if key in data]
    extras = sorted(set(data) - set(TITLES))
    for key in order + extras:
        entry = data[key]
        lines.append(f"\n## {TITLES.get(key, key)}\n")
        lines.append("| quantity | paper | measured | meas/paper |")
        lines.append("|---|---:|---:|---:|")
        for row in entry["rows"]:
            ratio = (
                row["measured"] / row["paper"] if row["paper"] else float("nan")
            )
            unit = f" {row['unit']}" if row.get("unit") else ""
            lines.append(
                f"| {row['label']} | {_number(row['paper'])}{unit} "
                f"| {_number(row['measured'])}{unit} | {ratio:.2f} |"
            )
        if entry.get("notes"):
            lines.append(f"\n*Note: {entry['notes']}*")
    lines.append("")
    return "\n".join(lines)


def main() -> None:
    output = generate()
    Path("EXPERIMENTS.md").write_text(output)
    print(f"wrote EXPERIMENTS.md ({len(output.splitlines())} lines)")


if __name__ == "__main__":
    main()
