"""One registry for every runnable name the CLI accepts.

``python -m repro`` grew subcommands faster than it grew discipline:
``trace``/``profile`` each imported ``SCENARIOS`` and ``shard``/
``chaos-topo`` each imported ``TOPOLOGIES``, every one re-implementing
the same "which kind of thing is this name?" lookup.  This module is
the single resolution point: ``top``, ``profile``, ``trace``, ``shard``
and ``chaos-topo`` all go through it, so a newly registered scenario or
topology appears in every subcommand at once.

Scenarios (:data:`repro.bench.profile.SCENARIOS`) are single-world
runs; topologies (:data:`repro.bench.topologies.TOPOLOGIES`) are
multi-segment specs that shard.  Names never collide today; if one
ever did, the topology wins for sharded subcommands — :func:`kind_of`
makes the ambiguity loud instead of silent.
"""

from __future__ import annotations

__all__ = [
    "scenario_names",
    "topology_names",
    "runnable_names",
    "kind_of",
    "resolve_topology",
]


def scenario_names() -> list[str]:
    """Sorted single-world scenario names (``profile``/``trace``)."""
    from repro.bench.profile import SCENARIOS

    return sorted(SCENARIOS)


def topology_names() -> list[str]:
    """Sorted multi-segment topology names (``shard``/``top``/...)."""
    from repro.bench.topologies import TOPOLOGIES

    return sorted(TOPOLOGIES)


def runnable_names() -> list[str]:
    """Every name the CLI accepts, both kinds, sorted."""
    return sorted(set(scenario_names()) | set(topology_names()))


def kind_of(name: str) -> str:
    """``"scenario"`` or ``"topology"``; raises :class:`LookupError`
    with the full inventory for anything unknown.  A name registered as
    both kinds is ambiguous and also raises — callers must pick the
    lookup (:func:`scenario_names` / :func:`resolve_topology`) they
    mean.
    """
    is_scenario = name in scenario_names()
    is_topology = name in topology_names()
    if is_scenario and is_topology:
        raise LookupError(
            f"{name!r} is registered as both a scenario and a topology"
        )
    if is_scenario:
        return "scenario"
    if is_topology:
        return "topology"
    raise LookupError(
        f"unknown name {name!r}; scenarios: {', '.join(scenario_names())}; "
        f"topologies: {', '.join(topology_names())}"
    )


def resolve_topology(name: str, **kwargs):
    """Build the named :class:`~repro.sim.topology.TopologySpec`."""
    from repro.bench.topologies import named_topology

    return named_topology(name, **kwargs)
