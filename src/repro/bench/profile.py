"""``python -m repro profile <scenario>`` — the ledger as a profiler.

Each scenario runs a canned workload in a ledger-enabled world and the
renderer prints what §6.1 got from 28 hours of gprof: attributed kernel
cost by primitive and by component, the packet-span outcome census,
per-stage receive-path latency percentiles, and where packets died.
Everything comes from :class:`repro.sim.ledger.Ledger` events — no
cost-model constant is consulted at reporting time.
"""

from __future__ import annotations

from ..core.ioctl import PFIoctl
from ..sim import Ioctl, Open, Read, Sleep, World, Write
from .scenarios import (
    _payload,
    _test_filter,
    run_bsp_chaos,
    run_overload_storm,
    run_pup_echo_chaos,
    run_rarp_chaos,
    run_vmtp_chaos,
)

__all__ = [
    "SCENARIOS",
    "classification_costs",
    "run_profile",
    "run_scenario",
    "render_profile",
    "profile_report",
]

_ENGINES = ("checked", "prevalidated", "compiled", "fused", "ir")


def classification_costs(
    *, filters: int = 32, min_seconds: float = 0.02
) -> dict[str, float]:
    """Wall-clock seconds per delivered packet for each demux engine.

    The ledger sections above attribute the *cost model's* constants;
    this line is the one number the model cannot supply — what filter
    classification actually costs in this Python on this machine, per
    engine, on the standard 32-filter workload the §7 ablation uses.
    """
    from .scenarios import measure_demux_throughput

    return {
        engine: 1.0
        / measure_demux_throughput(
            engine=engine, filters=filters, min_seconds=min_seconds
        )
        for engine in _ENGINES
    }


def _profile_receive(*, packet_bytes: int = 128, count: int = 40) -> dict:
    """The clean paced receive path (table 6-8's kernel-demux row)."""
    world = World(ledger=True, telemetry=True)
    sender = world.host("sender")
    receiver = world.host("receiver")
    sender.install_packet_filter()
    receiver.install_packet_filter()

    def send_body():
        fd = yield Open("pf")
        frame = _payload(sender, packet_bytes, receiver.address)
        yield Sleep(0.05)
        for _ in range(count):
            yield Write(fd, frame)
            yield Sleep(0.012)

    def receive_body():
        fd = yield Open("pf")
        yield Ioctl(fd, PFIoctl.SETFILTER, _test_filter())
        yield Ioctl(fd, PFIoctl.SETQUEUELEN, 64)
        received = 0
        while received < count:
            received += len((yield Read(fd)))

    dest = receiver.spawn("dest", receive_body())
    sender.spawn("sender", send_body())
    world.run_until_done(dest)
    return {"world": world, "host": "receiver"}


def _chaos_scenario(runner, host: str):
    def run() -> dict:
        result = runner(seed=11, ledger=True, telemetry=True)
        result["host"] = host
        return result

    return run


def _profile_overload(mode: str):
    def run() -> dict:
        result = run_overload_storm(
            mode=mode, offered_multiplier=4.0, duration=0.5, telemetry=True
        )
        result["host"] = "receiver"
        return result

    return run


SCENARIOS = {
    "receive": _profile_receive,
    "bsp-chaos": _chaos_scenario(run_bsp_chaos, "receiver"),
    "vmtp-chaos": _chaos_scenario(run_vmtp_chaos, "client"),
    "rarp-chaos": _chaos_scenario(run_rarp_chaos, "client"),
    "pup-chaos": _chaos_scenario(run_pup_echo_chaos, "client"),
    "overload-interrupt": _profile_overload("interrupt"),
    "overload-polling": _profile_overload("polling"),
}
"""Name -> runner; each returns a dict with ``world`` and ``host``."""


def run_scenario(scenario: str) -> dict:
    """Run one named scenario; returns its result dict (``world`` and
    ``host`` always present, telemetry armed, ledger on)."""
    try:
        runner = SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown profile scenario {scenario!r}; "
            f"choose from {', '.join(sorted(SCENARIOS))}"
        ) from None
    result = runner()
    result.setdefault("scenario", scenario)
    return result


def run_profile(scenario: str) -> str:
    """Run one named scenario and return its rendered profile."""
    result = run_scenario(scenario)
    return render_profile(result["world"], result["host"])


def profile_report(world: World, host: str, *, scenario: str | None = None) -> dict:
    """The machine-readable profile: everything :func:`render_profile`
    prints, as JSON-serializable structures (the ``--json`` CLI path).
    """
    ledger = world.ledger
    by_component: dict[str, float] = {}
    for event in ledger.iter_events(host):
        by_component[event.component] = (
            by_component.get(event.component, 0.0) + event.cost
        )
    outcomes: dict[str, int] = {}
    for span in ledger.spans_for(host):
        key = span.outcome or "open"
        outcomes[key] = outcomes.get(key, 0) + 1
    telemetry = world.telemetry
    alerts = []
    series = {}
    if telemetry is not None:
        alerts = [alert.to_dict() for alert in telemetry.alerts_for(host)]
        series = {
            s.name: s.latest() for s in telemetry.series_for(host)
        }
    return {
        "scenario": scenario,
        "host": host,
        "sim_seconds": world.now,
        "total_cost_seconds": ledger.total_cost(host),
        "breakdown": ledger.breakdown(host),
        "by_component": by_component,
        "span_outcomes": outcomes,
        "stage_percentiles_seconds": {
            # JSON object keys must be strings; "p50"-style reads best.
            f"p{round(p * 100)}": value
            for p, value in ledger.stage_percentiles(host=host).items()
        },
        "drops": ledger.drop_summary(host),
        "alerts": alerts,
        "telemetry_latest": series,
        "classification_seconds_per_packet": classification_costs(),
    }


def render_profile(world: World, host: str) -> str:
    """Format a ledger-enabled world's trace for one host."""
    ledger = world.ledger
    total = ledger.total_cost(host)
    lines = [
        f"=== charge profile: host {host!r}, "
        f"{world.now * 1000.0:.1f} simulated ms ===",
        "",
        f"attributed kernel cost: {total * 1000.0:.3f} ms",
        "",
        f"{'primitive':<20}{'events':>8}{'quantity':>10}"
        f"{'ms':>10}{'share':>8}",
    ]
    for name, row in sorted(
        ledger.breakdown(host).items(), key=lambda kv: -kv[1]["cost"]
    ):
        share = row["cost"] / total * 100.0 if total else 0.0
        lines.append(
            f"{name:<20}{row['events']:>8}{row['quantity']:>10}"
            f"{row['cost'] * 1000.0:>10.3f}{share:>7.1f}%"
        )

    by_component: dict[str, float] = {}
    for event in ledger.iter_events(host):
        by_component[event.component] = (
            by_component.get(event.component, 0.0) + event.cost
        )
    lines += ["", "by component:"]
    for component, cost in sorted(by_component.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {component:<12}{cost * 1000.0:>10.3f} ms")

    outcomes: dict[str, int] = {}
    for span in ledger.spans_for(host):
        key = span.outcome or "open"
        outcomes[key] = outcomes.get(key, 0) + 1
    if outcomes:
        lines += ["", "packet spans:"]
        for outcome, packets in sorted(outcomes.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {outcome:<18}{packets:>6}")

    percentiles = ledger.stage_percentiles(host=host)
    if percentiles:
        lines += ["", "wire-arrival -> syscall-return latency:"]
        for p, value in sorted(percentiles.items()):
            lines.append(f"  p{int(p * 100):<4}{value * 1000.0:>10.3f} ms")

    drops = ledger.drop_summary(host)
    if drops:
        lines += ["", "drops:"]
        for reason, dropped in sorted(drops.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {reason:<16}{dropped:>6}")

    telemetry = world.telemetry
    if telemetry is not None:
        alerts = telemetry.alerts_for(host)
        lines += ["", "watchdog alerts:"]
        if alerts:
            for alert in alerts:
                end = (
                    "still active"
                    if alert.cleared_at is None
                    else f"cleared {alert.cleared_at * 1000.0:.1f} ms"
                )
                lines.append(
                    f"  {alert.rule:<22}fired "
                    f"{alert.fired_at * 1000.0:>8.1f} ms, {end}"
                )
        else:
            lines.append("  none")

    lines += ["", "classification cost per engine (32 filters, wall-clock):"]
    for engine, cost in classification_costs().items():
        lines.append(f"  {engine:<14}{cost * 1e6:>10.2f} us/packet")

    return "\n".join(lines)
