"""Chrome trace-event / Perfetto JSON export for simulated runs.

Everything the ledger and the telemetry sampler record maps naturally
onto the Chrome trace-event format (the JSON flavour Perfetto's
https://ui.perfetto.dev loads directly):

* each **host** becomes a process (``pid``), each charging **component**
  (``nic``, ``pf``, ``sched``, ``udp``, ...) a thread (``tid``) inside
  it — named through ``M`` metadata events;
* every :class:`~repro.sim.ledger.ChargeEvent` with nonzero cost
  becomes a complete slice (``ph: "X"``) — the ``sched`` thread's
  slices are the per-host context-switch timeline;
* every :class:`~repro.sim.ledger.PacketSpan` becomes an async event
  (``ph: "b"/"n"/"e"``, one ``id`` per packet): begin at wire arrival,
  an instant per pipeline stage, end at the close with the outcome in
  ``args`` — a packet's whole kernel path on one track;
* every telemetry :class:`~repro.sim.telemetry.Series` becomes a
  counter track (``ph: "C"``, one event per sample);
* every watchdog :class:`~repro.sim.telemetry.Alert` becomes a pair of
  process-scoped instants (``ph: "i"``) at fire and clear time.

Timestamps are simulated microseconds (the format's native unit), so
one simulated second reads as one second in the viewer.

Use :func:`write_trace` (or ``python -m repro trace <scenario> -o
trace.json``); :func:`validate_trace` is the structural schema check
the tests and the CI artifact step share.

:func:`build_topology_trace` stitches an **N-shard run** into one
document: a process track per shard (window-boundary slices from the
sync profile's deterministic horizons, an egress-depth counter), flow
events (``ph: "s"/"f"``) joining each packet's bridge crossing from the
capturing shard to the delivering one — keyed ``(link_id, seq)``, the
same identity the bridges themselves use — plus the merged ledger and
telemetry rendered exactly like the single-world trace.  Every
timestamp is simulated time and no wall clock enters the document, so
repeating a run (same seed, same shard count) exports a byte-identical
trace on any machine.
"""

from __future__ import annotations

import json

__all__ = [
    "build_trace",
    "build_topology_trace",
    "write_trace",
    "write_topology_trace",
    "validate_trace",
]

_SECONDS_TO_US = 1e6


def _us(seconds: float) -> float:
    return seconds * _SECONDS_TO_US


class _IdAllocator:
    """Stable small-integer ids for hosts (pids) and components (tids)."""

    def __init__(self) -> None:
        self.pids: dict[str, int] = {}
        self.tids: dict[tuple[int, str], int] = {}

    def pid(self, host: str) -> int:
        if host not in self.pids:
            self.pids[host] = len(self.pids) + 1
        return self.pids[host]

    def tid(self, pid: int, component: str) -> int:
        key = (pid, component)
        if key not in self.tids:
            # tids only need to be unique within a pid; count per pid.
            self.tids[key] = (
                sum(1 for existing in self.tids if existing[0] == pid) + 1
            )
        return self.tids[key]


def _emit_ledger_events(ids, events, ledger, wanted) -> None:
    """Charge slices and packet-span async events from one ledger —
    shared by the single-world and the stitched topology exporters."""
    for event in ledger.events:
        if not wanted(event.host) or event.cost <= 0.0:
            continue
        pid = ids.pid(event.host)
        events.append(
            {
                "name": event.primitive.value,
                "cat": "charge",
                "ph": "X",
                "ts": _us(event.sim_time),
                "dur": _us(event.cost),
                "pid": pid,
                "tid": ids.tid(pid, event.component),
                "args": {
                    "quantity": event.quantity,
                    "packet_id": event.packet_id,
                    "flow": repr(event.flow) if event.flow is not None else None,
                },
            }
        )

    # -- packet spans as async (nestable) events --------------------------
    for span in ledger.spans.values():
        if not wanted(span.host) or not span.stages:
            continue
        pid = ids.pid(span.host)
        span_id = str(span.packet_id)
        begin_at = span.stages[0][1]
        common = {"cat": "packet", "id": span_id, "pid": pid}
        events.append(
            {
                "name": "packet",
                "ph": "b",
                "ts": _us(begin_at),
                **common,
                "args": {
                    "flow": repr(span.flow) if span.flow is not None else None
                },
            }
        )
        for stage, at in span.stages:
            events.append(
                {
                    "name": "packet",
                    "ph": "n",
                    "ts": _us(at),
                    **common,
                    "args": {"stage": stage},
                }
            )
        end_at = (
            span.closed_at
            if span.closed_at is not None
            else span.stages[-1][1]
        )
        events.append(
            {
                "name": "packet",
                "ph": "e",
                "ts": _us(end_at),
                **common,
                "args": {"outcome": span.outcome or "open"},
            }
        )


def _emit_metadata(ids, *, raw_names: frozenset = frozenset()) -> list[dict]:
    """``M`` events naming every allocated process and thread.

    Names in ``raw_names`` (the stitched trace's ``shard:N`` tracks)
    are used verbatim; everything else is a host and labelled
    ``host:<name>`` like the single-world exporter always did.
    """
    metadata: list[dict] = []
    for name, pid in sorted(ids.pids.items(), key=lambda kv: kv[1]):
        label = name if name in raw_names else f"host:{name}"
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": label},
            }
        )
        metadata.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "args": {"sort_index": pid},
            }
        )
    for (pid, component), tid in sorted(ids.tids.items(), key=lambda kv: kv[1]):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": component},
            }
        )
    return metadata


def build_trace(world, *, host: str | None = None) -> dict:
    """Serialize one run into a Chrome trace-event document.

    ``host`` restricts charge slices, counters and alerts to one host
    (packet spans and wire events are kept regardless when they belong
    to it).  Works with whatever the world recorded: a ledger-less run
    still exports telemetry counters, a telemetry-less run still
    exports spans and slices.
    """
    ids = _IdAllocator()
    events: list[dict] = []
    ledger = getattr(world, "ledger", None)
    telemetry = getattr(world, "telemetry", None)

    def wanted(event_host: str) -> bool:
        return host is None or event_host in (host, "wire")

    # -- charge slices (context switches included, on their component
    #    threads) ---------------------------------------------------------
    if ledger is not None:
        _emit_ledger_events(ids, events, ledger, wanted)

    # -- telemetry counter tracks ----------------------------------------
    if telemetry is not None:
        for series in telemetry.series_for(host):
            pid = ids.pid(series.host)
            for sample in series:
                events.append(
                    {
                        "name": series.name,
                        "cat": "telemetry",
                        "ph": "C",
                        "ts": _us(sample.time),
                        "pid": pid,
                        "args": {"value": sample.value},
                    }
                )

        # -- alert instants ----------------------------------------------
        for alert in telemetry.alerts:
            if host is not None and alert.host != host:
                continue
            pid = ids.pid(alert.host)
            base = {
                "cat": "alert",
                "ph": "i",
                "s": "p",  # process-scoped instant: a full-height marker
                "pid": pid,
                "tid": ids.tid(pid, "watchdog"),
            }
            events.append(
                {
                    "name": f"ALERT {alert.rule}",
                    "ts": _us(alert.fired_at),
                    **base,
                    "args": {
                        "message": alert.message,
                        "values": {
                            name: value
                            for name, value in alert.values.items()
                        },
                    },
                }
            )
            if alert.cleared_at is not None:
                events.append(
                    {
                        "name": f"CLEAR {alert.rule}",
                        "ts": _us(alert.cleared_at),
                        **base,
                        "args": {"fired_at_us": _us(alert.fired_at)},
                    }
                )

    # -- metadata: name the processes and threads -------------------------
    metadata = _emit_metadata(ids)

    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.bench.traceout",
            "sim_seconds": world.now,
            "hosts": sorted(ids.pids),
        },
    }


def build_topology_trace(result) -> dict:
    """Stitch one N-shard :class:`~repro.sim.orchestrator.TopologyResult`
    into a single Chrome trace-event document.

    Track layout:

    * one process per shard (``shard:N``, sorted first) carrying a
      ``sync`` thread of window-boundary slices (simulated horizons from
      the sync profile — deterministic, unlike its wall clocks), an
      ``egress`` counter of frames handed back per window, and one
      thread per bridge endpoint the shard owns;
    * ``ph: "s"/"f"`` flow events join each bridge crossing from the
      capturing shard to the delivering shard, keyed ``link_id#seq`` —
      the identity bridges already stamp — each anchored to an ``X``
      slice (the hop in flight on the source, a zero-width delivery
      mark on the destination);
    * merged ledger and telemetry render exactly as in
      :func:`build_trace`: per-host processes with charge slices,
      packet spans, counter tracks and alert instants.

    Everything is keyed to simulated time; repeating the same run
    (seed, shard count) emits a byte-identical document — pinned by a
    regression test.  The *simulation payload* (spans, counters,
    alerts) is additionally shard-count-invariant; only the shard track
    layout reflects the partitioning.
    """
    ids = _IdAllocator()
    events: list[dict] = []
    shard_names: list[str] = []

    shard_of: dict[str, int] = {}
    for detail in result.shard_details:
        name = f"shard:{detail['shard']}"
        shard_names.append(name)
        pid = ids.pid(name)
        for segment in detail["segments"]:
            shard_of[segment] = pid

    # -- window-boundary slices and per-shard egress counters -------------
    sync = result.sync
    if sync is not None:
        horizons = [h for h in sync.horizons if h is not None]
        for name in shard_names:
            pid = ids.pid(name)
            tid = ids.tid(pid, "sync")
            stats = sync.shards[pid - 1]
            previous = 0.0
            for index, horizon in enumerate(horizons):
                events.append(
                    {
                        "name": f"window {index}",
                        "cat": "sync",
                        "ph": "X",
                        "ts": _us(previous),
                        "dur": _us(max(horizon - previous, 0.0)),
                        "pid": pid,
                        "tid": tid,
                        "args": {"horizon": horizon},
                    }
                )
                if index < len(stats.egress_per_window):
                    events.append(
                        {
                            "name": "egress",
                            "cat": "sync",
                            "ph": "C",
                            "ts": _us(horizon),
                            "pid": pid,
                            "args": {
                                "value": stats.egress_per_window[index]
                            },
                        }
                    )
                previous = horizon

    # -- bridge crossings: hop slices + s/f flow events --------------------
    # Capture order within an endpoint is deterministic; reports iterate
    # in spec order, so the event stream reproduces bitwise.
    for report in result.segment_reports:
        for link_id, seq, captured_at, deliver_at, src, dst in report.flows:
            src_pid = shard_of.get(src)
            dst_pid = shard_of.get(dst)
            if src_pid is None or dst_pid is None:
                continue
            flow_id = f"{link_id}#{seq}"
            src_tid = ids.tid(src_pid, f"bridge:{link_id}")
            dst_tid = ids.tid(dst_pid, f"bridge:{link_id}")
            hop = {
                "cat": "bridge",
                "args": {"link": link_id, "seq": seq, "src": src, "dst": dst},
            }
            events.append(
                {
                    "name": f"hop {link_id}",
                    "ph": "X",
                    "ts": _us(captured_at),
                    "dur": _us(deliver_at - captured_at),
                    "pid": src_pid,
                    "tid": src_tid,
                    **hop,
                }
            )
            events.append(
                {
                    "name": f"hop {link_id}",
                    "ph": "X",
                    "ts": _us(deliver_at),
                    "dur": 0,
                    "pid": dst_pid,
                    "tid": dst_tid,
                    **hop,
                }
            )
            events.append(
                {
                    "name": f"hop {link_id}",
                    "cat": "flow",
                    "ph": "s",
                    "ts": _us(captured_at),
                    "id": flow_id,
                    "pid": src_pid,
                    "tid": src_tid,
                }
            )
            events.append(
                {
                    "name": f"hop {link_id}",
                    "cat": "flow",
                    "ph": "f",
                    "bp": "e",
                    "ts": _us(deliver_at),
                    "id": flow_id,
                    "pid": dst_pid,
                    "tid": dst_tid,
                }
            )

    # -- merged ledger: charge slices and packet spans ---------------------
    if result.ledger is not None:
        _emit_ledger_events(ids, events, result.ledger, lambda _host: True)

    # -- merged telemetry snapshot: counters and alert instants ------------
    telemetry = result.telemetry
    if telemetry is not None:
        for (series_host, series_name), data in telemetry.series.items():
            pid = ids.pid(series_host)
            for at, value in data["samples"]:
                events.append(
                    {
                        "name": series_name,
                        "cat": "telemetry",
                        "ph": "C",
                        "ts": _us(at),
                        "pid": pid,
                        "args": {"value": value},
                    }
                )
        for alert in telemetry.alerts:
            pid = ids.pid(alert["host"])
            base = {
                "cat": "alert",
                "ph": "i",
                "s": "p",
                "pid": pid,
                "tid": ids.tid(pid, "watchdog"),
            }
            events.append(
                {
                    "name": f"ALERT {alert['rule']}",
                    "ts": _us(alert["fired_at"]),
                    **base,
                    "args": {
                        "message": alert.get("message", ""),
                        "values": dict(alert.get("values", {})),
                    },
                }
            )
            if alert.get("cleared_at") is not None:
                events.append(
                    {
                        "name": f"CLEAR {alert['rule']}",
                        "ts": _us(alert["cleared_at"]),
                        **base,
                        "args": {"fired_at_us": _us(alert["fired_at"])},
                    }
                )

    metadata = _emit_metadata(ids, raw_names=frozenset(shard_names))
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.bench.traceout",
            "sim_seconds": result.now,
            "shards": result.shards,
            "windows": result.windows,
            "hosts": sorted(
                name for name in ids.pids if name not in set(shard_names)
            ),
        },
    }


def write_trace(world, path, *, host: str | None = None) -> dict:
    """Build the trace document and write it to ``path`` as JSON;
    returns the document."""
    doc = build_trace(world, host=host)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, separators=(",", ":"))
    return doc


def write_topology_trace(result, path) -> dict:
    """Build the stitched topology trace and write it to ``path``;
    returns the document."""
    doc = build_topology_trace(result)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, separators=(",", ":"))
    return doc


#: required keys per event phase, on top of ``name``/``ph``/``pid``.
_PHASE_REQUIRED = {
    "X": ("ts", "dur", "tid"),
    "C": ("ts", "args"),
    "b": ("ts", "id", "cat"),
    "n": ("ts", "id", "cat"),
    "e": ("ts", "id", "cat"),
    "s": ("ts", "id", "cat", "tid"),
    "f": ("ts", "id", "cat", "tid"),
    "i": ("ts",),
    "M": ("args",),
}


def validate_trace(doc) -> list[str]:
    """Structural schema check; returns a list of problems (empty =
    valid).  Shared by the unit tests and the CI artifact step.

    Beyond per-event keys it checks two cross-event invariants the
    stitched trace relies on: every ``pid`` referenced by an event must
    be named by a ``process_name`` metadata record (an anonymous track
    renders as garbage in Perfetto), and every flow id must have both
    its start (``s``) and finish (``f``) half — an unpaired flow arrow
    points at nothing.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    named_pids: set = set()
    used_pids: set = set()
    flow_starts: set = set()
    flow_ends: set = set()
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        phase = event.get("ph")
        if phase not in _PHASE_REQUIRED:
            problems.append(f"event {index} has unknown phase {phase!r}")
            continue
        if "name" not in event or "pid" not in event:
            problems.append(f"event {index} ({phase}) lacks name/pid")
        for key in _PHASE_REQUIRED[phase]:
            if key not in event:
                problems.append(f"event {index} ({phase}) lacks {key!r}")
        ts = event.get("ts")
        if ts is not None and (not isinstance(ts, (int, float)) or ts < 0):
            problems.append(f"event {index} has bad ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {index} has bad dur {dur!r}")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or "value" not in args:
                problems.append(f"event {index} (C) lacks args.value")
        if phase == "M":
            if event.get("name") == "process_name":
                named_pids.add(event.get("pid"))
        elif "pid" in event:
            used_pids.add(event["pid"])
        if phase == "s":
            flow_starts.add(event.get("id"))
        elif phase == "f":
            flow_ends.add(event.get("id"))
    for pid in sorted(used_pids - named_pids):
        problems.append(f"pid {pid} has no process_name metadata")
    for flow_id in sorted(flow_starts - flow_ends):
        problems.append(f"flow {flow_id!r} starts but never finishes")
    for flow_id in sorted(flow_ends - flow_starts):
        problems.append(f"flow {flow_id!r} finishes but never starts")
    return problems
