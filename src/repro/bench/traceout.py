"""Chrome trace-event / Perfetto JSON export for simulated runs.

Everything the ledger and the telemetry sampler record maps naturally
onto the Chrome trace-event format (the JSON flavour Perfetto's
https://ui.perfetto.dev loads directly):

* each **host** becomes a process (``pid``), each charging **component**
  (``nic``, ``pf``, ``sched``, ``udp``, ...) a thread (``tid``) inside
  it — named through ``M`` metadata events;
* every :class:`~repro.sim.ledger.ChargeEvent` with nonzero cost
  becomes a complete slice (``ph: "X"``) — the ``sched`` thread's
  slices are the per-host context-switch timeline;
* every :class:`~repro.sim.ledger.PacketSpan` becomes an async event
  (``ph: "b"/"n"/"e"``, one ``id`` per packet): begin at wire arrival,
  an instant per pipeline stage, end at the close with the outcome in
  ``args`` — a packet's whole kernel path on one track;
* every telemetry :class:`~repro.sim.telemetry.Series` becomes a
  counter track (``ph: "C"``, one event per sample);
* every watchdog :class:`~repro.sim.telemetry.Alert` becomes a pair of
  process-scoped instants (``ph: "i"``) at fire and clear time.

Timestamps are simulated microseconds (the format's native unit), so
one simulated second reads as one second in the viewer.

Use :func:`write_trace` (or ``python -m repro trace <scenario> -o
trace.json``); :func:`validate_trace` is the structural schema check
the tests and the CI artifact step share.
"""

from __future__ import annotations

import json

__all__ = ["build_trace", "write_trace", "validate_trace"]

_SECONDS_TO_US = 1e6


def _us(seconds: float) -> float:
    return seconds * _SECONDS_TO_US


class _IdAllocator:
    """Stable small-integer ids for hosts (pids) and components (tids)."""

    def __init__(self) -> None:
        self.pids: dict[str, int] = {}
        self.tids: dict[tuple[int, str], int] = {}

    def pid(self, host: str) -> int:
        if host not in self.pids:
            self.pids[host] = len(self.pids) + 1
        return self.pids[host]

    def tid(self, pid: int, component: str) -> int:
        key = (pid, component)
        if key not in self.tids:
            # tids only need to be unique within a pid; count per pid.
            self.tids[key] = (
                sum(1 for existing in self.tids if existing[0] == pid) + 1
            )
        return self.tids[key]


def build_trace(world, *, host: str | None = None) -> dict:
    """Serialize one run into a Chrome trace-event document.

    ``host`` restricts charge slices, counters and alerts to one host
    (packet spans and wire events are kept regardless when they belong
    to it).  Works with whatever the world recorded: a ledger-less run
    still exports telemetry counters, a telemetry-less run still
    exports spans and slices.
    """
    ids = _IdAllocator()
    events: list[dict] = []
    ledger = getattr(world, "ledger", None)
    telemetry = getattr(world, "telemetry", None)

    def wanted(event_host: str) -> bool:
        return host is None or event_host in (host, "wire")

    # -- charge slices (context switches included, on their component
    #    threads) ---------------------------------------------------------
    if ledger is not None:
        for event in ledger.events:
            if not wanted(event.host) or event.cost <= 0.0:
                continue
            pid = ids.pid(event.host)
            events.append(
                {
                    "name": event.primitive.value,
                    "cat": "charge",
                    "ph": "X",
                    "ts": _us(event.sim_time),
                    "dur": _us(event.cost),
                    "pid": pid,
                    "tid": ids.tid(pid, event.component),
                    "args": {
                        "quantity": event.quantity,
                        "packet_id": event.packet_id,
                        "flow": repr(event.flow) if event.flow is not None else None,
                    },
                }
            )

        # -- packet spans as async (nestable) events ----------------------
        for span in ledger.spans.values():
            if not wanted(span.host) or not span.stages:
                continue
            pid = ids.pid(span.host)
            span_id = str(span.packet_id)
            begin_at = span.stages[0][1]
            common = {"cat": "packet", "id": span_id, "pid": pid}
            events.append(
                {
                    "name": "packet",
                    "ph": "b",
                    "ts": _us(begin_at),
                    **common,
                    "args": {
                        "flow": repr(span.flow) if span.flow is not None else None
                    },
                }
            )
            for stage, at in span.stages:
                events.append(
                    {
                        "name": "packet",
                        "ph": "n",
                        "ts": _us(at),
                        **common,
                        "args": {"stage": stage},
                    }
                )
            end_at = (
                span.closed_at
                if span.closed_at is not None
                else span.stages[-1][1]
            )
            events.append(
                {
                    "name": "packet",
                    "ph": "e",
                    "ts": _us(end_at),
                    **common,
                    "args": {"outcome": span.outcome or "open"},
                }
            )

    # -- telemetry counter tracks ----------------------------------------
    if telemetry is not None:
        for series in telemetry.series_for(host):
            pid = ids.pid(series.host)
            for sample in series:
                events.append(
                    {
                        "name": series.name,
                        "cat": "telemetry",
                        "ph": "C",
                        "ts": _us(sample.time),
                        "pid": pid,
                        "args": {"value": sample.value},
                    }
                )

        # -- alert instants ----------------------------------------------
        for alert in telemetry.alerts:
            if host is not None and alert.host != host:
                continue
            pid = ids.pid(alert.host)
            base = {
                "cat": "alert",
                "ph": "i",
                "s": "p",  # process-scoped instant: a full-height marker
                "pid": pid,
                "tid": ids.tid(pid, "watchdog"),
            }
            events.append(
                {
                    "name": f"ALERT {alert.rule}",
                    "ts": _us(alert.fired_at),
                    **base,
                    "args": {
                        "message": alert.message,
                        "values": {
                            name: value
                            for name, value in alert.values.items()
                        },
                    },
                }
            )
            if alert.cleared_at is not None:
                events.append(
                    {
                        "name": f"CLEAR {alert.rule}",
                        "ts": _us(alert.cleared_at),
                        **base,
                        "args": {"fired_at_us": _us(alert.fired_at)},
                    }
                )

    # -- metadata: name the processes and threads -------------------------
    metadata: list[dict] = []
    for host_name, pid in sorted(ids.pids.items(), key=lambda kv: kv[1]):
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": f"host:{host_name}"},
            }
        )
        metadata.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "args": {"sort_index": pid},
            }
        )
    for (pid, component), tid in sorted(ids.tids.items(), key=lambda kv: kv[1]):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": component},
            }
        )

    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.bench.traceout",
            "sim_seconds": world.now,
            "hosts": sorted(ids.pids),
        },
    }


def write_trace(world, path, *, host: str | None = None) -> dict:
    """Build the trace document and write it to ``path`` as JSON;
    returns the document."""
    doc = build_trace(world, host=host)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, separators=(",", ":"))
    return doc


#: required keys per event phase, on top of ``name``/``ph``/``pid``.
_PHASE_REQUIRED = {
    "X": ("ts", "dur", "tid"),
    "C": ("ts", "args"),
    "b": ("ts", "id", "cat"),
    "n": ("ts", "id", "cat"),
    "e": ("ts", "id", "cat"),
    "i": ("ts",),
    "M": ("args",),
}


def validate_trace(doc) -> list[str]:
    """Structural schema check; returns a list of problems (empty =
    valid).  Shared by the unit tests and the CI artifact step."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        phase = event.get("ph")
        if phase not in _PHASE_REQUIRED:
            problems.append(f"event {index} has unknown phase {phase!r}")
            continue
        if "name" not in event or "pid" not in event:
            problems.append(f"event {index} ({phase}) lacks name/pid")
        for key in _PHASE_REQUIRED[phase]:
            if key not in event:
                problems.append(f"event {index} ({phase}) lacks {key!r}")
        ts = event.get("ts")
        if ts is not None and (not isinstance(ts, (int, float)) or ts < 0):
            problems.append(f"event {index} has bad ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {index} has bad dur {dur!r}")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or "value" not in args:
                problems.append(f"event {index} (C) lacks args.value")
    return problems
