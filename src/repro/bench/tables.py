"""Paper-vs-measured table rendering and shape assertions.

Every benchmark prints its table through :func:`render_table` so the
output format is uniform, and records its rows with :func:`record_rows`
so ``EXPERIMENTS.md`` can be regenerated from an actual run
(``python -m repro.bench.report``).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass

__all__ = ["Row", "render_table", "record_rows", "within_factor"]

RESULTS_PATH = os.environ.get("REPRO_RESULTS", "bench_results.json")


@dataclass(frozen=True)
class Row:
    """One line of a reproduced table."""

    label: str
    paper: float
    measured: float
    unit: str = ""

    @property
    def ratio(self) -> float:
        if self.paper == 0:
            return float("nan")
        return self.measured / self.paper


def render_table(title: str, rows: list[Row]) -> str:
    """Uniform paper-vs-measured rendering."""
    width = max(len(row.label) for row in rows)
    lines = [
        "",
        f"=== {title} ===",
        f"{'':{width}}  {'paper':>10}  {'measured':>10}  {'meas/paper':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row.label:{width}}  {row.paper:10.2f}  {row.measured:10.2f}"
            f"  {row.ratio:10.2f}  {row.unit}"
        )
    return "\n".join(lines)


def record_rows(experiment: str, rows: list[Row], notes: str = "") -> None:
    """Append results to the JSON the report generator reads.

    Appends are merged by experiment id, so re-running a single bench
    updates just its section.
    """
    data: dict = {}
    if os.path.exists(RESULTS_PATH):
        try:
            with open(RESULTS_PATH) as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            data = {}
    data[experiment] = {
        "rows": [asdict(row) for row in rows],
        "notes": notes,
    }
    with open(RESULTS_PATH, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)


def within_factor(measured: float, paper: float, factor: float) -> bool:
    """True when measured is within ``factor``x of the paper's value in
    either direction — the loose absolute check; benches assert shapes
    (orderings, ratios) tightly and absolutes loosely."""
    if paper <= 0 or measured <= 0:
        return False
    big, small = max(measured, paper), min(measured, paper)
    return big / small <= factor
