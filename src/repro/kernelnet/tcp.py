"""Kernel-resident TCP — the stream baseline of tables 6-3, 6-6, 6-7.

A deliberately compact but *real* sliding-window TCP: three-way
handshake, cumulative acknowledgements, receiver-advertised flow
control, in-order reassembly with an out-of-order buffer, retransmission
on timeout, and FIN teardown.  It moves actual bytes: the protocol tests
assert the received stream equals the sent stream under injected loss,
duplication and reordering.

Where it is simpler than 4.3BSD TCP, the simplification is invisible to
the paper's measurements: no congestion control (one Ethernet, no
routers), no delayed ACKs (the paper's per-packet accounting assumes an
ACK per data packet — figure 2-3's "far more packets are exchanged at
lower levels than are seen at higher levels"), fixed RTO.

Cost shape per §6.1/§6.3: every received segment charges IP input
(0.49 ms, in the IP layer) plus transport input (to 1.77 ms total), and
"TCP checksums all data" — checksum cost is charged on both paths,
which is exactly why unchecksummed VMTP beats TCP in table 6-3.

The default MSS of 1024 bytes yields the paper's 1078-byte packets;
``SockIoctl.SET_MSS`` with 514 reproduces the "TCP forced to use the
smaller [568-byte] packet size" experiment of §6.4.
"""

from __future__ import annotations

import enum
from ..protocols.ip import PROTO_TCP
from ..protocols.tcp import (
    DEFAULT_MSS,
    TCPError,
    TCPFlags,
    TCPSegment,
)
from ..sim.errors import InvalidArgument, SimTimeout
from ..sim.kernel import DeviceDriver, SimKernel, WaitQueue
from ..sim.ledger import Primitive
from ..sim.process import Ioctl, Process, Write
from .ipstack import KernelNetworkStack
from .sockets import BufferedSocketHandle, SockIoctl, StreamReadMixin

__all__ = ["KernelTCP", "TCPSocketHandle"]

SEND_BUFFER_LIMIT = 8192
RECEIVE_WINDOW = 4096
RETRANSMIT_TIMEOUT = 0.2
MAX_RETRANSMITS = 8
OUT_OF_ORDER_LIMIT = 64


class TCPState(enum.Enum):
    CLOSED = "closed"
    LISTEN = "listen"
    SYN_SENT = "syn-sent"
    SYN_RCVD = "syn-rcvd"
    ESTABLISHED = "established"
    FIN_SENT = "fin-sent"


class KernelTCP(DeviceDriver):
    """The TCP protocol module + its socket device."""

    def __init__(self, stack: KernelNetworkStack, device_name: str = "tcp") -> None:
        self.stack = stack
        self.kernel = stack.kernel
        self._ports: dict[int, TCPSocketHandle] = {}
        self._next_ephemeral = 2048
        self._next_iss = 100
        stack.register_transport(PROTO_TCP, self._tcp_input)
        self.kernel.register_device(device_name, self)
        self.segments_in = 0
        self.segments_no_port = 0

    def open(self, kernel: SimKernel, process: Process) -> "TCPSocketHandle":
        return TCPSocketHandle(self)

    def bind(self, handle: "TCPSocketHandle", port: int | None) -> int:
        if port is None:
            while self._next_ephemeral in self._ports:
                self._next_ephemeral += 1
            port = self._next_ephemeral
            self._next_ephemeral += 1
        if port in self._ports:
            raise InvalidArgument(f"TCP port {port} is in use")
        self._ports[port] = handle
        return port

    def release(self, port: int | None) -> None:
        if port is not None:
            self._ports.pop(port, None)

    def issue_iss(self) -> int:
        """Deterministic initial sequence numbers keep runs replayable."""
        self._next_iss += 1000
        return self._next_iss

    def _tcp_input(self, ip_header, payload: bytes) -> None:
        costs = self.kernel.costs
        self.kernel.account(
            Primitive.TRANSPORT_INPUT, costs.transport_input, component="tcp"
        )
        self.kernel.account(
            Primitive.CHECKSUM,
            len(payload) / 1024.0 * costs.checksum_per_kbyte,
            quantity=len(payload),
            component="tcp",
        )
        try:
            segment = TCPSegment.decode(payload)
        except TCPError:
            return
        handle = self._ports.get(segment.dst_port)
        if handle is None:
            self.segments_no_port += 1
            return
        self.segments_in += 1
        handle.segment_arrived(ip_header.src, segment)


class TCPSocketHandle(StreamReadMixin, BufferedSocketHandle):
    """One TCP endpoint (a listening socket becomes the connection —
    one connection per socket, which is all the evaluation needs)."""

    def __init__(self, protocol: KernelTCP) -> None:
        super().__init__(protocol.kernel)
        self.protocol = protocol
        self.state = TCPState.CLOSED
        self.local_port: int | None = None
        self.peer: tuple[int, int] | None = None  # (ip, port)
        self.mss = DEFAULT_MSS

        self.snd_una = 0
        self.snd_nxt = 0
        self.rcv_nxt = 0
        self.peer_window = RECEIVE_WINDOW
        self._send_queue = bytearray()          # not yet segmented
        self._inflight: list[tuple[int, bytes, TCPFlags]] = []
        self._writers = WaitQueue(protocol.kernel)
        self._connector: Process | None = None
        self._retransmit_event = None
        self._retransmit_count = 0
        self._ooo: dict[int, TCPSegment] = {}
        self._fin_pending = False
        self._window_was_closed = False
        self._release_when_drained = False

        self.segments_sent = 0
        self.acks_sent = 0
        self.retransmits = 0

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------

    def ioctl(self, process: Process, call: Ioctl) -> None:
        if call.command == SockIoctl.BIND:
            self.local_port = self.protocol.bind(self, call.argument)
            self.state = TCPState.LISTEN
            self.kernel.complete(process, self.local_port)
        elif call.command == SockIoctl.CONNECT:
            self._connect(process, call.argument)
        elif call.command == SockIoctl.SET_MSS:
            mss = int(call.argument)
            if mss < 1:
                raise InvalidArgument("MSS must be positive")
            self.mss = mss
            self.kernel.complete(process, None)
        else:
            raise InvalidArgument(f"unsupported TCP ioctl {call.command!r}")

    def _connect(self, process: Process, peer: tuple[int, int]) -> None:
        if self.state is not TCPState.CLOSED:
            raise InvalidArgument("socket is not closed")
        if self.local_port is None:
            self.local_port = self.protocol.bind(self, None)
        self.peer = (int(peer[0]), int(peer[1]))
        iss = self.protocol.issue_iss()
        self.snd_una = iss
        self.snd_nxt = iss + 1
        self.state = TCPState.SYN_SENT
        self._connector = process  # completed when ESTABLISHED
        self._transmit(iss, b"", TCPFlags.SYN, track=True)

    # ------------------------------------------------------------------
    # user data path
    # ------------------------------------------------------------------

    def write(self, process: Process, call: Write) -> None:
        if self.state is not TCPState.ESTABLISHED:
            raise InvalidArgument(f"socket is {self.state.value}, not established")
        data = bytes(call.data)
        if len(self._send_queue) + len(data) > SEND_BUFFER_LIMIT and self._send_queue:
            self._writers.block(process, lambda proc: self.write(proc, call))
            return
        self.kernel.charge_copy(len(data), component="tcp")  # user -> buffer
        self._send_queue.extend(data)
        self._pump()
        self.kernel.complete(process, len(data))

    def _after_read(self) -> None:
        # Receiver window reopened: tell a stalled sender (window update).
        if self._window_was_closed and self.state is TCPState.ESTABLISHED:
            self._window_was_closed = False
            self._send_ack()

    def _advertised_window(self) -> int:
        free = max(0, RECEIVE_WINDOW - self.buffered_bytes)
        if free < self.mss:
            self._window_was_closed = True
        return free

    # ------------------------------------------------------------------
    # segment transmission
    # ------------------------------------------------------------------

    def _pump(self) -> None:
        """Send while the peer's window has room (sliding window)."""
        while self._send_queue:
            inflight_bytes = self.snd_nxt - self.snd_una
            room = self.peer_window - inflight_bytes
            if room < min(self.mss, len(self._send_queue)):
                return
            chunk = bytes(self._send_queue[: self.mss])
            del self._send_queue[: len(chunk)]
            seq = self.snd_nxt
            self.snd_nxt += len(chunk)
            self._transmit(seq, chunk, TCPFlags.ACK | TCPFlags.PSH, track=True)
        if self._fin_pending and not self._send_queue:
            self._fin_pending = False
            seq = self.snd_nxt
            self.snd_nxt += 1
            self.state = TCPState.FIN_SENT
            self._transmit(seq, b"", TCPFlags.FIN | TCPFlags.ACK, track=True)

    def _transmit(
        self, seq: int, payload: bytes, flags: TCPFlags, *, track: bool
    ) -> None:
        costs = self.kernel.costs
        self.kernel.account(
            Primitive.TRANSPORT_OUTPUT, costs.transport_output, component="tcp"
        )
        self.kernel.account(
            Primitive.CHECKSUM,
            len(payload) / 1024.0 * costs.checksum_per_kbyte,
            quantity=len(payload),
            component="tcp",
        )
        segment = TCPSegment(
            src_port=self.local_port or 0,
            dst_port=self.peer[1],
            seq=seq,
            ack=self.rcv_nxt,
            flags=flags,
            window=self._advertised_window(),
            payload=payload,
        )
        self.segments_sent += 1
        self.protocol.stack.send(self.peer[0], PROTO_TCP, segment.encode())
        if track:
            self._inflight.append((seq, payload, flags))
            self._arm_retransmit()

    def _send_ack(self) -> None:
        self.acks_sent += 1
        self._transmit(self.snd_nxt, b"", TCPFlags.ACK, track=False)

    # ------------------------------------------------------------------
    # retransmission
    # ------------------------------------------------------------------

    def _arm_retransmit(self) -> None:
        if self._retransmit_event is None:
            self._retransmit_event = self.kernel.scheduler.schedule(
                RETRANSMIT_TIMEOUT, self._retransmit_fire
            )

    def _cancel_retransmit(self) -> None:
        if self._retransmit_event is not None:
            self._retransmit_event.cancel()
            self._retransmit_event = None
        self._retransmit_count = 0

    def _retransmit_fire(self) -> None:
        self._retransmit_event = None
        if not self._inflight or self.state is TCPState.CLOSED:
            return
        self._retransmit_count += 1
        if self._retransmit_count > MAX_RETRANSMITS:
            self._abort(SimTimeout("TCP retransmission limit reached"))
            return
        seq, payload, flags = self._inflight[0]
        self.retransmits += 1
        self._transmit(seq, payload, flags, track=False)
        self._arm_retransmit()

    def _abort(self, error: SimTimeout) -> None:
        self.state = TCPState.CLOSED
        if self._connector is not None:
            connector, self._connector = self._connector, None
            self.kernel.fail(connector, error)
        self._mark_eof()

    # ------------------------------------------------------------------
    # segment arrival (interrupt level)
    # ------------------------------------------------------------------

    def segment_arrived(self, src_ip: int, segment: TCPSegment) -> None:
        if self.state is TCPState.LISTEN:
            if not segment.is_syn:
                return
            self.peer = (src_ip, segment.src_port)
            self.rcv_nxt = segment.seq + 1
            iss = self.protocol.issue_iss()
            self.snd_una = iss
            self.snd_nxt = iss + 1
            self.state = TCPState.SYN_RCVD
            self._transmit(iss, b"", TCPFlags.SYN | TCPFlags.ACK, track=True)
            return

        if self.peer is None or (src_ip, segment.src_port) != self.peer:
            return  # stray segment for some other conversation

        if segment.is_ack:
            self._process_ack(segment)
        if segment.is_syn and self.state is TCPState.SYN_SENT:
            # SYN-ACK: complete the three-way handshake.
            self.rcv_nxt = segment.seq + 1
            self.state = TCPState.ESTABLISHED
            self._send_ack()
            if self._connector is not None:
                connector, self._connector = self._connector, None
                self.kernel.complete(connector, None)
            return

        if segment.payload or segment.is_fin:
            self._process_data(segment)

    def _process_ack(self, segment: TCPSegment) -> None:
        ack = segment.ack
        self.peer_window = segment.window
        if ack > self.snd_una:
            self.snd_una = ack
            self._inflight = [
                (seq, payload, flags)
                for seq, payload, flags in self._inflight
                if seq + max(1, len(payload)) > ack
            ]
            self._cancel_retransmit()
            if self._inflight:
                self._arm_retransmit()
            if self.state is TCPState.SYN_RCVD:
                self.state = TCPState.ESTABLISHED
            self._writers.wake_all()
        self._pump()
        fully_drained = (
            not self._inflight
            and not self._send_queue
            and not self._fin_pending
        )
        if self._release_when_drained and fully_drained:
            self.protocol.release(self.local_port)
            self.local_port = None
            self._release_when_drained = False

    def _process_data(self, segment: TCPSegment) -> None:
        if segment.seq == self.rcv_nxt:
            self._accept_in_order(segment)
            # Drain any out-of-order segments this unblocked.
            while self.rcv_nxt in self._ooo:
                self._accept_in_order(self._ooo.pop(self.rcv_nxt))
        elif segment.seq > self.rcv_nxt:
            if len(self._ooo) < OUT_OF_ORDER_LIMIT:
                self._ooo.setdefault(segment.seq, segment)
        # Duplicates (seq < rcv_nxt) fall through: ack repeats our state.
        self._send_ack()

    def _accept_in_order(self, segment: TCPSegment) -> None:
        if segment.payload:
            self.rcv_nxt += len(segment.payload)
            self._deposit(segment.payload)
        if segment.is_fin:
            self.rcv_nxt += 1
            self._mark_eof()

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------

    def close(self, process: Process) -> None:
        if self.state is TCPState.ESTABLISHED:
            self._fin_pending = True
            self._pump()
            # The port stays bound until everything in flight (data +
            # FIN) is acknowledged, so teardown completes cleanly.
            self._release_when_drained = True
            return
        if self.state in (TCPState.LISTEN, TCPState.SYN_SENT):
            self.state = TCPState.CLOSED
        self.protocol.release(self.local_port)
        self.local_port = None
