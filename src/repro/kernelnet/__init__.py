"""The kernel-resident baseline protocol stack (figure 3-2).

Everything here runs "inside" the simulated kernel: packet processing
happens at interrupt level with kernel cost charges and no per-packet
domain crossings — exactly the property the paper credits for
kernel-resident protocols' speed, and prices at a development/
portability cost the packet filter exists to avoid.
"""

from .ipstack import KernelNetworkStack, link_stacks
from .sockets import BufferedSocketHandle, SockIoctl
from .tcp import KernelTCP, TCPSocketHandle
from .udp import KernelUDP
from .vmtp import KernelVMTP

__all__ = [
    "KernelNetworkStack",
    "link_stacks",
    "SockIoctl",
    "BufferedSocketHandle",
    "KernelUDP",
    "KernelTCP",
    "TCPSocketHandle",
    "KernelVMTP",
]
