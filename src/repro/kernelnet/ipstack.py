"""The kernel-resident IP layer — the figure 3-2 baseline's foundation.

Receives IP datagrams at interrupt level (registered on the Ethernet
type, exactly the dispatch the paper's kernel performs before the packet
filter ever sees a frame), validates headers, charges the measured
0.49 ms of §6.1 per input, and hands payloads to the bound transport
(UDP/TCP).  Output builds real IPv4 headers with checksums.

Routing is a static next-hop table (ip -> station address) populated by
:func:`link_stacks`; the paper's machines lived on one Ethernet, so a
resolver protocol would add nothing the evaluation measures.  (RARP —
the *reverse* direction — is implemented separately, at user level over
the packet filter, as section 5.3 describes.)
"""

from __future__ import annotations

from typing import Callable

from ..protocols.ethertypes import ETHERTYPE_IP
from ..protocols.ip import IPError, IPHeader, format_ip
from ..sim.host import Host
from ..sim.ledger import Primitive

__all__ = ["KernelNetworkStack", "link_stacks"]


class KernelNetworkStack:
    """One host's in-kernel IP layer plus its transport registry."""

    def __init__(self, host: Host, ip_address: int | None = None) -> None:
        self.host = host
        self.kernel = host.kernel
        if ip_address is None:
            # Default: 10.0.0.<station> from the data-link address.
            ip_address = (10 << 24) | int.from_bytes(host.address[-1:], "big")
        self.ip_address = ip_address
        self._routes: dict[int, bytes] = {}
        self._transports: dict[int, Callable] = {}
        self._ip_id = 0
        self.datagrams_received = 0
        self.datagrams_sent = 0
        self.bad_datagrams = 0
        self.undeliverable = 0
        self.kernel.register_ethertype(ETHERTYPE_IP, self._ip_input)

    # -- configuration ------------------------------------------------------

    def add_route(self, ip: int, station: bytes) -> None:
        """Map a peer IP address to its data-link station address."""
        self._routes[ip] = station

    def register_transport(self, protocol: int, handler: Callable) -> None:
        """``handler(ip_header, payload)`` runs at interrupt level."""
        if protocol in self._transports:
            raise ValueError(f"IP protocol {protocol} already registered")
        self._transports[protocol] = handler

    # -- output ----------------------------------------------------------------

    def send(
        self,
        dst_ip: int,
        protocol: int,
        payload: bytes,
        *,
        options: bytes = b"",
    ) -> None:
        """Build and transmit one IP datagram (kernel context)."""
        station = self._routes.get(dst_ip)
        if station is None:
            self.undeliverable += 1
            raise IPError(f"no route to {format_ip(dst_ip)}")
        self._ip_id = (self._ip_id + 1) & 0xFFFF
        header = IPHeader(
            src=self.ip_address,
            dst=dst_ip,
            protocol=protocol,
            identification=self._ip_id,
            options=options,
        )
        frame = self.host.link.frame(
            station, self.host.address, ETHERTYPE_IP, header.encode(payload)
        )
        self.datagrams_sent += 1
        self.kernel.network_output(self.host.nic, frame)

    # -- input ------------------------------------------------------------------

    def _ip_input(self, nic, frame: bytes) -> None:
        self.kernel.account(
            Primitive.IP_INPUT, self.kernel.costs.ip_input, component="ip"
        )
        try:
            header, payload = IPHeader.decode(self.host.link.payload_of(frame))
        except IPError:
            self.bad_datagrams += 1
            return
        if header.dst != self.ip_address:
            return  # not ours; a router we are not
        self.datagrams_received += 1
        handler = self._transports.get(header.protocol)
        if handler is None:
            self.undeliverable += 1
            return
        handler(header, payload)


def link_stacks(*stacks: KernelNetworkStack) -> None:
    """Give every stack a route to every other (one-Ethernet world)."""
    for stack in stacks:
        for other in stacks:
            if other is not stack:
                stack.add_route(other.ip_address, other.host.address)
