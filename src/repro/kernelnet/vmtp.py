"""Kernel-resident VMTP — the other half of the table 6-2/6-3 comparison.

"Although there is a kernel-resident implementation of VMTP for 4.3BSD,
the first implementation used the packet filter."  This module is that
kernel-resident implementation, deliberately exchanging the *same*
packets as the user-level one in :mod:`repro.protocols.vmtp` (shared
wire format, same segment groups, same retransmission discipline), so
the measured difference between them is purely *where the code runs*:

* all protocol processing (segmentation, reassembly, duplicate
  suppression, retransmission) happens at interrupt level or in the
  syscall path — charged as kernel transport costs, with no
  per-packet context switches or extra copies;
* the user process crosses into the kernel exactly twice per
  transaction on each side (one write, one read), however many packets
  the message needed — figure 2-3's point about kernel residency
  confining overhead packets.
"""

from __future__ import annotations

from typing import Optional

from ..protocols.ethertypes import ETHERTYPE_VMTP
from ..protocols.vmtp import (
    MAX_REQUEST_RETRIES,
    REQUEST_RETRY_TIMEOUT,
    MessageAssembler,
    VMTPError,
    VMTPKind,
    VMTPPacket,
    segment_message,
    select_segments,
)
from ..sim.errors import InvalidArgument, SimTimeout
from ..sim.host import Host
from ..sim.kernel import DeviceDriver, SimKernel
from ..sim.ledger import Primitive
from ..sim.process import Ioctl, Process, Write
from .sockets import BufferedSocketHandle, SockIoctl

__all__ = ["KernelVMTP"]


class KernelVMTP(DeviceDriver):
    """The kernel VMTP module + its ``"vmtp"`` socket device."""

    def __init__(self, host: Host, device_name: str = "vmtp") -> None:
        self.host = host
        self.kernel: SimKernel = host.kernel
        self._clients: dict[int, VMTPClientHandle] = {}
        self._servers: dict[int, VMTPServerHandle] = {}
        self._next_client_id = 1
        self.kernel.register_ethertype(ETHERTYPE_VMTP, self._input)
        self.kernel.register_device(device_name, self)
        self.packets_in = 0
        self.packets_unwanted = 0

    def open(self, kernel: SimKernel, process: Process) -> "VMTPRoleHandle":
        return VMTPRoleHandle(self)

    # -- registration -------------------------------------------------------

    def new_client(self, handle: "VMTPClientHandle") -> int:
        client_id = self._next_client_id
        self._next_client_id += 1
        self._clients[client_id] = handle
        return client_id

    def bind_server(self, server_id: int, handle: "VMTPServerHandle") -> None:
        if server_id in self._servers:
            raise InvalidArgument(f"VMTP server id {server_id} is in use")
        self._servers[server_id] = handle

    # -- interrupt-level input -----------------------------------------------

    def _input(self, nic, frame: bytes) -> None:
        self.kernel.account(
            Primitive.TRANSPORT_INPUT,
            self.kernel.costs.transport_input,
            component="vmtp",
        )
        try:
            packet = VMTPPacket.decode(self.host.link.payload_of(frame))
        except VMTPError:
            return
        station = self.host.link.source_of(frame)
        if packet.kind == VMTPKind.RESPONSE:
            endpoint = self._clients.get(packet.client)
        else:  # REQUEST or RSPACK go to the server
            endpoint = self._servers.get(packet.server)
        if endpoint is None:
            self.packets_unwanted += 1
            return
        self.packets_in += 1
        endpoint.packet_arrived(station, packet)

    # -- output helper (kernel context) ------------------------------------------

    def send_packet(self, station: bytes, packet: VMTPPacket) -> None:
        self.kernel.account(
            Primitive.TRANSPORT_OUTPUT,
            self.kernel.costs.transport_output,
            component="vmtp",
        )
        frame = self.host.link.frame(
            station, self.host.address, ETHERTYPE_VMTP, packet.encode()
        )
        self.kernel.network_output(self.host.nic, frame)


class VMTPRoleHandle(BufferedSocketHandle):
    """A freshly opened VMTP socket, before its role is chosen.

    BIND makes it a server; CONNECT makes it a client.  The first ioctl
    swaps in the role-specific handle behaviour by rebinding the fd's
    methods — a tiny trick that keeps each role's logic in its own
    class.
    """

    def __init__(self, protocol: KernelVMTP) -> None:
        super().__init__(protocol.kernel)
        self.protocol = protocol
        self._role: BufferedSocketHandle | None = None

    def ioctl(self, process: Process, call: Ioctl) -> None:
        if self._role is not None:
            self._role.ioctl(process, call)
            return
        if call.command == SockIoctl.BIND:
            role = VMTPServerHandle(self.protocol, int(call.argument))
        elif call.command == SockIoctl.CONNECT:
            station, server_id = call.argument
            role = VMTPClientHandle(self.protocol, bytes(station), int(server_id))
        else:
            raise InvalidArgument("VMTP socket needs BIND or CONNECT first")
        self._role = role
        self.kernel.complete(process, role.describe())

    # Delegate data operations to the chosen role.

    def read(self, process, call):
        self._require_role().read(process, call)

    def write(self, process, call):
        self._require_role().write(process, call)

    def poll_readable(self) -> bool:
        return self._role is not None and self._role.poll_readable()

    def close(self, process) -> None:
        if self._role is not None:
            self._role.close(process)

    def _require_role(self) -> BufferedSocketHandle:
        if self._role is None:
            raise InvalidArgument("VMTP socket needs BIND or CONNECT first")
        return self._role


class VMTPClientHandle(BufferedSocketHandle):
    """Client role: write a request, read the response."""

    def __init__(self, protocol: KernelVMTP, station: bytes, server_id: int) -> None:
        super().__init__(protocol.kernel)
        self.protocol = protocol
        self.station = station
        self.server_id = server_id
        self.client_id = protocol.new_client(self)
        self._transaction = 0
        self._outstanding: Optional[dict] = None
        self.retries = 0

    def describe(self) -> int:
        return self.client_id

    def write(self, process: Process, call: Write) -> None:
        request = bytes(call.data)
        self.kernel.charge_copy(len(request), component="vmtp")
        self._transaction = (self._transaction + 1) & 0xFFFF
        self._outstanding = {
            "transaction": self._transaction,
            "request": request,
            "assembler": MessageAssembler(),
            "retries": 0,
            "timer": None,
        }
        self._send_request()
        self.kernel.complete(process, len(request))

    def _send_request(self) -> None:
        outstanding = self._outstanding
        assert outstanding is not None
        # Retries carry the selective-retransmission mask of response
        # segments still missing; the first send asks for everything.
        group = segment_message(
            VMTPKind.REQUEST, self.client_id, self.server_id,
            outstanding["transaction"], outstanding["request"],
            segment_mask=outstanding["assembler"].missing_mask(),
        )
        for packet in group:
            self.protocol.send_packet(self.station, packet)
        outstanding["timer"] = self.kernel.scheduler.schedule(
            REQUEST_RETRY_TIMEOUT, self._retry, outstanding["transaction"]
        )

    def _retry(self, transaction: int) -> None:
        outstanding = self._outstanding
        if outstanding is None or outstanding["transaction"] != transaction:
            return
        outstanding["retries"] += 1
        if outstanding["retries"] >= MAX_REQUEST_RETRIES:
            self._outstanding = None
            self._post_error(
                SimTimeout(f"VMTP transaction {transaction}: no response")
            )
            return
        self.retries += 1
        self._send_request()

    def packet_arrived(self, station: bytes, packet: VMTPPacket) -> None:
        outstanding = self._outstanding
        if (
            outstanding is None
            or packet.transaction != outstanding["transaction"]
        ):
            return  # stale response from an abandoned transaction
        message = outstanding["assembler"].add(packet)
        if message is None:
            return
        if outstanding["timer"] is not None:
            outstanding["timer"].cancel()
        self._outstanding = None
        ack = VMTPPacket(
            kind=VMTPKind.RSPACK,
            client=self.client_id,
            server=self.server_id,
            transaction=packet.transaction,
            seg_index=0,
            seg_count=1,
            total_length=0,
        )
        self.protocol.send_packet(self.station, ack)
        self._deposit(message)

    def close(self, process: Process) -> None:
        outstanding, self._outstanding = self._outstanding, None
        if outstanding is not None and outstanding["timer"] is not None:
            outstanding["timer"].cancel()
        self.protocol._clients.pop(self.client_id, None)


class VMTPServerHandle(BufferedSocketHandle):
    """Server role: read requests, write responses (FIFO pairing)."""

    def __init__(self, protocol: KernelVMTP, server_id: int) -> None:
        super().__init__(protocol.kernel)
        self.protocol = protocol
        self.server_id = server_id
        protocol.bind_server(server_id, self)
        self._assemblers: dict[tuple, MessageAssembler] = {}
        self._pending_replies: list[dict] = []   # FIFO of request contexts
        # Client identity is (station, client id): ids are only unique
        # per host, as in VMTP's entity identifiers.
        self._response_cache: dict[tuple, dict] = {}
        self._in_progress: dict[tuple, int] = {}
        self.duplicate_requests = 0

    def describe(self) -> int:
        return self.server_id

    def packet_arrived(self, station: bytes, packet: VMTPPacket) -> None:
        who = (station, packet.client)
        if packet.kind == VMTPKind.RSPACK:
            cached = self._response_cache.get(who)
            if cached is not None and cached["transaction"] == packet.transaction:
                del self._response_cache[who]
            return
        if packet.kind != VMTPKind.REQUEST:
            return
        cached = self._response_cache.get(who)
        if cached is not None and cached["transaction"] == packet.transaction:
            # Duplicate of an answered request: retransmit from cache
            # without bothering the server process (at-most-once), and
            # only the segments the retry's mask still wants.
            self.duplicate_requests += 1
            for response_packet in select_segments(
                cached["group"], packet.segment_mask
            ):
                self.protocol.send_packet(station, response_packet)
            return
        if self._in_progress.get(who) == packet.transaction:
            self.duplicate_requests += 1
            return
        key = (who, packet.transaction)
        assembler = self._assemblers.setdefault(key, MessageAssembler())
        request = assembler.add(packet)
        if request is None:
            return
        del self._assemblers[key]
        self._in_progress[who] = packet.transaction
        self._pending_replies.append(
            {
                "station": station,
                "client": packet.client,
                "transaction": packet.transaction,
            }
        )
        self._deposit(request)

    def write(self, process: Process, call: Write) -> None:
        if not self._pending_replies:
            raise InvalidArgument("no request is awaiting a response")
        context = self._pending_replies.pop(0)
        response = bytes(call.data)
        self.kernel.charge_copy(len(response), component="vmtp")
        group = segment_message(
            VMTPKind.RESPONSE, context["client"], self.server_id,
            context["transaction"], response,
        )
        self._response_cache[(context["station"], context["client"])] = {
            "transaction": context["transaction"],
            "group": group,
        }
        for packet in group:
            self.protocol.send_packet(context["station"], packet)
        self.kernel.complete(process, len(response))

    def close(self, process: Process) -> None:
        self.protocol._servers.pop(self.server_id, None)
