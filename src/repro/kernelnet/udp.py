"""Kernel-resident UDP — the datagram baseline of table 6-1.

Registers the ``"udp"`` device; a process opens it, BINDs a local port,
CONNECTs to a peer, then writes datagrams and reads datagrams.  The send
path charges the table 6-1 calibrated socket/route overhead that the
packet filter's raw write avoids ("it does not need to choose a route
for the datagram or compute a checksum" — §6.1); checksumming is off by
default because that is the variant the paper measured.
"""

from __future__ import annotations

from ..protocols.ip import PROTO_UDP
from ..protocols.udp import UDPError, UDPHeader
from ..sim.errors import InvalidArgument
from ..sim.kernel import DeviceDriver, SimKernel
from ..sim.ledger import Primitive
from ..sim.process import Ioctl, Process, Write
from .ipstack import KernelNetworkStack
from .sockets import BufferedSocketHandle, SockIoctl

__all__ = ["KernelUDP"]


class KernelUDP(DeviceDriver):
    """The UDP protocol module + its socket device."""

    def __init__(self, stack: KernelNetworkStack, device_name: str = "udp") -> None:
        self.stack = stack
        self.kernel = stack.kernel
        self._ports: dict[int, UDPSocketHandle] = {}
        self._next_ephemeral = 1024
        stack.register_transport(PROTO_UDP, self._udp_input)
        self.kernel.register_device(device_name, self)
        self.datagrams_in = 0
        self.datagrams_no_port = 0

    def open(self, kernel: SimKernel, process: Process) -> "UDPSocketHandle":
        return UDPSocketHandle(self)

    # -- port table -----------------------------------------------------------

    def bind(self, handle: "UDPSocketHandle", port: int | None) -> int:
        if port is None:
            while self._next_ephemeral in self._ports:
                self._next_ephemeral += 1
            port = self._next_ephemeral
            self._next_ephemeral += 1
        if port in self._ports:
            raise InvalidArgument(f"UDP port {port} is in use")
        self._ports[port] = handle
        return port

    def release(self, port: int | None) -> None:
        if port is not None:
            self._ports.pop(port, None)

    # -- input (interrupt level, below the IP layer's 0.49 ms) -------------------

    def _udp_input(self, ip_header, payload: bytes) -> None:
        self.kernel.account(
            Primitive.TRANSPORT_INPUT,
            self.kernel.costs.transport_input,
            component="udp",
        )
        try:
            header, data = UDPHeader.decode(payload)
        except UDPError:
            return
        if header.with_checksum:
            self.kernel.account(
                Primitive.CHECKSUM,
                len(payload) / 1024.0 * self.kernel.costs.checksum_per_kbyte,
                quantity=len(payload),
                component="udp",
            )
        handle = self._ports.get(header.dst_port)
        if handle is None:
            self.datagrams_no_port += 1
            return
        self.datagrams_in += 1
        handle.deposit_datagram(ip_header.src, header.src_port, data)


class UDPSocketHandle(BufferedSocketHandle):
    """One UDP socket: a bound port plus an optional connected peer."""

    def __init__(self, protocol: KernelUDP) -> None:
        super().__init__(protocol.kernel)
        self.protocol = protocol
        self.local_port: int | None = None
        self.peer: tuple[int, int] | None = None   # (ip, port)
        self.with_checksum = False
        self.last_sender: tuple[int, int] | None = None

    # -- control --------------------------------------------------------------

    def ioctl(self, process: Process, call: Ioctl) -> None:
        if call.command == SockIoctl.BIND:
            self.local_port = self.protocol.bind(self, call.argument)
            self.kernel.complete(process, self.local_port)
        elif call.command == SockIoctl.CONNECT:
            ip, port = call.argument
            self.peer = (int(ip), int(port))
            if self.local_port is None:
                self.local_port = self.protocol.bind(self, None)
            self.kernel.complete(process, None)
        elif call.command == SockIoctl.SET_CHECKSUM:
            self.with_checksum = bool(call.argument)
            self.kernel.complete(process, None)
        else:
            raise InvalidArgument(f"unsupported UDP ioctl {call.command!r}")

    # -- data ---------------------------------------------------------------------

    def write(self, process: Process, call: Write) -> None:
        if self.peer is None:
            raise InvalidArgument("UDP socket is not connected")
        if self.local_port is None:
            self.local_port = self.protocol.bind(self, None)
        data = bytes(call.data)
        kernel = self.kernel
        kernel.charge_copy(len(data), component="udp")      # user -> kernel
        kernel.account(                                     # socket + route
            Primitive.UDP_SEND_OVERHEAD,
            kernel.costs.udp_send_overhead,
            component="udp",
        )
        if self.with_checksum:
            kernel.account(
                Primitive.CHECKSUM,
                len(data) / 1024.0 * kernel.costs.checksum_per_kbyte,
                quantity=len(data),
                component="udp",
            )
        header = UDPHeader(
            src_port=self.local_port,
            dst_port=self.peer[1],
            with_checksum=self.with_checksum,
        )
        self.protocol.stack.send(self.peer[0], PROTO_UDP, header.encode(data))
        kernel.complete(process, len(data))

    def deposit_datagram(self, src_ip: int, src_port: int, data: bytes) -> None:
        self.last_sender = (src_ip, src_port)
        self._deposit(data)

    def close(self, process: Process) -> None:
        self.protocol.release(self.local_port)
        self.local_port = None
