"""Kernel socket layer: the syscall surface of the in-kernel protocols.

The paper's baselines (figure 3-2) expose kernel-resident protocols to
user processes through sockets; this module is the shared machinery —
ioctl command codes, the buffered-handle base class with blocking reads
— that :mod:`repro.kernelnet.udp`, :mod:`.tcp` and :mod:`.vmtp` build
their devices on.
"""

from __future__ import annotations

import enum
from collections import deque
from ..sim.errors import InvalidArgument
from ..sim.kernel import DeviceHandle, SimKernel, WaitQueue
from ..sim.process import Ioctl, Process, Read

__all__ = ["SockIoctl", "BufferedSocketHandle"]


class SockIoctl(enum.IntEnum):
    """Socket control commands (the bind/connect surface, ioctl-shaped)."""

    BIND = 100       #: arg: local port / service id
    CONNECT = 101    #: arg: protocol-specific peer address
    SET_MSS = 102    #: arg: max payload bytes per packet (TCP: table 6-6)
    SET_CHECKSUM = 103  #: arg: bool (UDP: table 6-1 measured it off)
    GET_STATS = 104  #: returns a protocol-specific stats object


class BufferedSocketHandle(DeviceHandle):
    """A socket with a kernel receive buffer and blocking reads.

    Subclasses deposit received data with :meth:`_deposit` (datagram
    sockets deposit message chunks; stream sockets deposit bytes) and
    implement their own ``write``/``ioctl``.
    """

    #: Datagram sockets: queued messages before drops.  Stream sockets
    #: override flow control with windows instead.
    RECEIVE_QUEUE_LIMIT = 32

    def __init__(self, kernel: SimKernel) -> None:
        self.kernel = kernel
        self._chunks: deque[bytes] = deque()
        self._buffered_bytes = 0
        self._eof = False
        self._pending_error = None
        self._readers = WaitQueue(kernel)
        self.drops = 0           #: messages lost to a full receive queue
        self.received_messages = 0

    # -- kernel side ------------------------------------------------------

    def _deposit(self, data: bytes) -> bool:
        """Queue received data for the reader; False when dropped."""
        if len(self._chunks) >= self.RECEIVE_QUEUE_LIMIT:
            self.drops += 1
            return False
        self._chunks.append(data)
        self._buffered_bytes += len(data)
        self.received_messages += 1
        self._readers.wake_all()
        self.kernel.readiness_changed()
        return True

    def _mark_eof(self) -> None:
        self._eof = True
        self._readers.wake_all()
        self.kernel.readiness_changed()

    def _post_error(self, error) -> None:
        """Fail the next read(s) with ``error`` (e.g. transaction
        timeout in kernel VMTP)."""
        self._pending_error = error
        self._readers.wake_all()
        self.kernel.readiness_changed()

    @property
    def buffered_bytes(self) -> int:
        return self._buffered_bytes

    # -- reader side -------------------------------------------------------

    def poll_readable(self) -> bool:
        return bool(self._chunks) or self._eof

    def read(self, process: Process, call: Read) -> None:
        if self._chunks:
            data = self._take(call.size)
            self.kernel.charge_copy(len(data), component="socket")
            self.kernel.complete(process, data)
            self._after_read()
            return
        if self._pending_error is not None:
            error, self._pending_error = self._pending_error, None
            self.kernel.fail(process, error)
            return
        if self._eof:
            self.kernel.complete(process, b"")
            return
        self._readers.block(process, lambda proc: self.read(proc, call))

    def _take(self, size: int | None) -> bytes:
        """Datagram behaviour: one message per read.  Stream subclasses
        override to coalesce up to ``size`` bytes."""
        chunk = self._chunks.popleft()
        self._buffered_bytes -= len(chunk)
        return chunk

    def _after_read(self) -> None:
        """Hook for flow control (stream sockets reopen their window)."""

    # -- defaults ------------------------------------------------------------

    def ioctl(self, process: Process, call: Ioctl) -> None:
        raise InvalidArgument(f"unsupported socket ioctl {call.command!r}")


class StreamReadMixin:
    """Byte-stream ``_take``: coalesce chunks up to the requested size."""

    def _take(self, size: int | None) -> bytes:
        if size is None:
            size = self._buffered_bytes
        out = bytearray()
        while self._chunks and len(out) < size:
            chunk = self._chunks[0]
            need = size - len(out)
            if len(chunk) <= need:
                out.extend(self._chunks.popleft())
            else:
                out.extend(chunk[:need])
                self._chunks[0] = chunk[need:]
        self._buffered_bytes -= len(out)
        return bytes(out)
