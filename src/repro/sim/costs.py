"""The cost model — the paper's measured primitives, as charging rules.

Every performance claim in section 6 decomposes per-packet cost into a
handful of primitives the authors measured directly on a MicroVAX-II
running Ultrix 1.2 (section 6.5.2) and a VAX-11/780 (section 6.1).  The
simulated kernel charges CPU time from this table, so the benchmark
tables come out of the same arithmetic the paper's analytical model
uses — which is the point: the packet filter's advantage is an
*accounting* fact about context switches, copies and crossings, not a
property of 1987 silicon.

All costs are in **seconds** of simulated CPU time.

Calibration sources, all from the paper:

* ``context_switch`` = 0.4 ms — "about 0.4 mSec of CPU time to switch
  between processes" (§6.5.2).
* ``copy_short`` = 0.5 ms, ``copy_per_kbyte`` = 1.0 ms — "about 0.5 mSec
  of CPU time to transfer a short packet between the kernel and a
  process ... data copying requires about 1 mSec/Kbyte" (§6.5.2-3).
* ``filter_instruction`` ≈ 0.029 ms — the slope of table 6-10
  ((2.5 - 1.9) ms over 21 instructions).
* ``filter_dispatch`` + a few instructions ≈ 0.122 ms/predicate (§6.1).
* ``ip_input`` = 0.49 ms, ``transport_input`` = 1.28 ms (so the full
  IP→TCP/UDP input path is the measured 1.77 ms) (§6.1).
* ``udp_send_overhead`` = 1.2 ms — the constant gap between the PF and
  UDP rows of table 6-1 (3.1-1.9 = 4.9-3.6 ≈ 1.2).
* ``microtime`` = 0.07 ms — "on a VAX-11/780, this costs about 70 uSec,
  probably more than the timestamp is worth" (§7).

The remaining constants (interrupt service, driver send, wakeup,
per-packet bookkeeping) are fit so the composite paths land on the
paper's totals: PF send 1.9/3.6 ms (table 6-1), kernel-demux receive
2.3/4.0 ms (table 6-8), PF kernel CPU 0.8 ms + 0.122/predicate (§6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "MICROVAX_II", "VAX_780", "FREE"]

_MS = 1e-3

#: Packet size (bytes) below which a kernel<->user copy costs only the
#: fixed ``copy_short``; the per-KByte slope applies beyond it.
SHORT_PACKET_BYTES = 128


@dataclass(frozen=True)
class CostModel:
    """CPU-time charging rules for one simulated host."""

    # -- process/kernel boundary --------------------------------------
    context_switch: float = 0.4 * _MS
    syscall: float = 0.25 * _MS          #: entry+exit of one system call
    wakeup: float = 0.15 * _MS           #: scheduler work to unblock a process
    copy_short: float = 0.5 * _MS        #: kernel<->user copy, short packet
    copy_per_kbyte: float = 1.0 * _MS    #: additional copy cost per KByte

    # -- interrupt-level packet handling --------------------------------
    interrupt_service: float = 0.35 * _MS  #: per received frame
    kernel_buffer_per_kbyte: float = 0.35 * _MS  #: mbuf shuffling per KByte

    # -- packet filter ---------------------------------------------------
    pf_fixed: float = 0.3 * _MS          #: per-packet PF bookkeeping
    filter_dispatch: float = 0.04 * _MS  #: per filter applied
    filter_instruction: float = 0.0286 * _MS  #: per instruction interpreted
    filter_bind: float = 1.5 * _MS       #: binding a new filter (ioctl);
    #: "at a cost comparable to that of receiving a packet" (§3)
    microtime: float = 0.07 * _MS        #: per-packet timestamp (§7)

    # -- kernel-resident protocols ------------------------------------------
    ip_input: float = 0.49 * _MS         #: IP layer input processing (§6.1)
    transport_input: float = 1.28 * _MS  #: TCP/UDP input above IP (§6.1)
    transport_output: float = 0.6 * _MS  #: TCP/UDP header build + socket
    udp_send_overhead: float = 1.2 * _MS  #: socket+route send path (tab 6-1)
    checksum_per_kbyte: float = 0.26 * _MS  #: software Internet checksum;
    #: charged by TCP on both paths ("TCP checksums all data" §6.3) and
    #: skipped by the unchecksummed UDP/VMTP configurations measured

    # -- device driver -----------------------------------------------------
    driver_send: float = 0.9 * _MS       #: queue a frame for transmission
    pf_send_fixed: float = 0.25 * _MS    #: PF write bookkeeping above driver

    # -- user-level protocol code ---------------------------------------------
    #: Per-packet protocol processing a *user-level* implementation does
    #: in user mode (header parsing, state machine, timer bookkeeping).
    #: Charged via Compute by repro.protocols.{vmtp,bsp}; this is the
    #: irreducible "doing it in a process" work whose sum with the
    #: domain-crossing costs makes user-level VMTP ~2x the kernel one
    #: (table 6-2).
    user_transport_per_packet: float = 1.8 * _MS
    #: User-space reassembly/buffering memcpy, per KByte (the kernel
    #: implementations hand data straight from the socket buffer).
    user_copy_per_kbyte: float = 1.0 * _MS

    def copy_cost(self, nbytes: int) -> float:
        """One kernel<->user (or pipe) data transfer of ``nbytes``."""
        extra = max(0, nbytes - SHORT_PACKET_BYTES)
        return self.copy_short + (extra / 1024.0) * self.copy_per_kbyte

    def buffer_cost(self, nbytes: int) -> float:
        """Interrupt-level buffer handling for an ``nbytes`` frame."""
        return (nbytes / 1024.0) * self.kernel_buffer_per_kbyte

    def filter_cost(self, predicates: int, instructions: int) -> float:
        """Demultiplexing cost for one packet: ``predicates`` filters
        applied, ``instructions`` total interpreter steps executed."""
        return (
            predicates * self.filter_dispatch
            + instructions * self.filter_instruction
        )

    def scaled(self, factor: float) -> "CostModel":
        """A uniformly faster/slower machine (used by ablation benches)."""
        values = {
            name: getattr(self, name) * factor
            for name in self.__dataclass_fields__
        }
        return CostModel(**values)


#: The machine of tables 6-1/6-5/6-8/6-9/6-10 (Ultrix 1.2, MicroVAX-II).
MICROVAX_II = CostModel()

#: The timesharing machine of the §6.1 profile — roughly 2.5x faster at
#: straight-line kernel code than the MicroVAX-II.
VAX_780 = MICROVAX_II.scaled(1 / 2.5)

#: Zero-cost model: functional tests use it so protocol logic can be
#: exercised without any performance modelling in the way.
FREE = CostModel(**{name: 0.0 for name in CostModel.__dataclass_fields__})
