"""Shards: groups of segments stepping in lockstep, possibly in
separate processes.

A shard owns one or more :class:`~repro.sim.topology.SegmentRuntime`
and exposes the conservative-synchronization surface the orchestrator
drives:

``step(horizon, frames)``
    A *time grant* (the null message of null-message algorithms, carried
    on the same call that delivers any actual frames): inject the
    inbound bridged frames, run every owned segment's world up to — but
    excluding — ``horizon``, and return the frames captured for other
    segments plus the earliest pending local event time.

``collect()``
    Per-segment :class:`~repro.sim.topology.SegmentReport` records —
    stats, ledger, telemetry snapshot, builder reports — as picklable
    data.

Two interchangeable implementations: :class:`LocalShard` runs in the
calling process (the ``shards=1`` fallback — and the oracle that the
multiprocess path must match bitwise); :class:`ProcessShard` runs a
:class:`LocalShard` inside a ``multiprocessing`` worker, speaking a
small tuple protocol over a pipe.  The send/receive halves are split so
the orchestrator can grant time to every shard before blocking on any
reply — that concurrency is the whole speedup.
"""

from __future__ import annotations

import multiprocessing
import os

from .topology import SegmentRuntime, TopologySpec

__all__ = ["LocalShard", "ProcessShard", "partition"]


def partition(count: int, shards: int) -> list[list[int]]:
    """Deal ``count`` segment indices round-robin into ``shards`` groups.

    Round-robin keeps neighbouring (often similarly loaded) segments on
    different shards; the assignment is a pure function of the two
    counts, so every run partitions identically.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    groups: list[list[int]] = [[] for _ in range(min(shards, count))]
    for index in range(count):
        groups[index % len(groups)].append(index)
    return groups


class LocalShard:
    """Segments stepped in the calling process."""

    def __init__(self, topology: TopologySpec, indices: list[int]) -> None:
        # Build in index order: construction order is observable (RNG
        # draws, sequence numbers) and must be partition-independent.
        self.runtimes = {
            topology.segments[index].name: SegmentRuntime(topology, index)
            for index in sorted(indices)
        }
        self._reply = None

    # -- stepping -------------------------------------------------------

    def step(self, horizon: float | None, frames: list) -> tuple:
        """Run one window; returns (events fired, egress, next time).

        ``horizon=None`` means "no bridges anywhere": run each world to
        quiescence instead of to a time bound.
        """
        by_segment: dict[str, list] = {}
        for record in frames:
            by_segment.setdefault(record.dst_segment, []).append(record)
        for name, runtime in self.runtimes.items():
            runtime.inject(by_segment.get(name, []))
        fired = 0
        egress: list = []
        for runtime in self.runtimes.values():
            if horizon is None:
                fired += runtime.run_to_quiescence()
            else:
                fired += runtime.run_until(horizon)
            egress.extend(runtime.drain_egress())
        times = [
            t
            for t in (runtime.next_time() for runtime in self.runtimes.values())
            if t is not None
        ]
        return fired, egress, (min(times) if times else None)

    # Split halves, so Local and Process shards drive identically: the
    # orchestrator issues every send, then drains every receive.

    def step_send(self, horizon: float | None, frames: list) -> None:
        self._reply = self.step(horizon, frames)

    def step_recv(self) -> tuple:
        reply, self._reply = self._reply, None
        return reply

    # -- collection -----------------------------------------------------

    def collect(self) -> list:
        return [runtime.collect() for runtime in self.runtimes.values()]

    def close(self) -> None:
        pass


def _shard_worker(topology: TopologySpec, indices: list[int], conn) -> None:
    """Worker main loop: build the shard, then serve step/collect/exit."""
    shard = LocalShard(topology, indices)
    try:
        while True:
            message = conn.recv()
            command = message[0]
            if command == "step":
                _, horizon, frames = message
                conn.send(("stepped",) + shard.step(horizon, frames))
            elif command == "collect":
                conn.send(("collected", shard.collect()))
            elif command == "exit":
                return
            else:
                conn.send(("error", f"unknown command {command!r}"))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


def _default_context():
    """Fork where available (cheap, inherits imports); spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and os.name == "posix":
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


class ProcessShard:
    """A :class:`LocalShard` behind a pipe, in its own process."""

    def __init__(
        self,
        topology: TopologySpec,
        indices: list[int],
        *,
        context=None,
    ) -> None:
        context = context or _default_context()
        if context.get_start_method() == "spawn":
            for index in indices:
                builder = topology.segments[index].builder
                if not isinstance(builder, str):
                    raise ValueError(
                        "spawn-based shards need string builder references "
                        f"(segment {topology.segments[index].name!r} has a "
                        "bare callable); use 'module:function' paths"
                    )
        self.indices = list(indices)
        self._conn, child = context.Pipe()
        self._process = context.Process(
            target=_shard_worker,
            args=(topology, indices, child),
            daemon=True,
        )
        self._process.start()
        child.close()

    def step_send(self, horizon: float | None, frames: list) -> None:
        self._conn.send(("step", horizon, frames))

    def step_recv(self) -> tuple:
        reply = self._conn.recv()
        if reply[0] != "stepped":
            raise RuntimeError(f"shard protocol error: {reply!r}")
        return reply[1:]

    def collect(self) -> list:
        self._conn.send(("collect",))
        reply = self._conn.recv()
        if reply[0] != "collected":
            raise RuntimeError(f"shard protocol error: {reply!r}")
        return reply[1]

    def close(self) -> None:
        try:
            self._conn.send(("exit",))
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=5.0)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5.0)
        self._conn.close()
