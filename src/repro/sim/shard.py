"""Shards: groups of segments stepping in lockstep, possibly in
separate processes.

A shard owns one or more :class:`~repro.sim.topology.SegmentRuntime`
and exposes the conservative-synchronization surface the orchestrator
drives:

``step(horizon, frames)``
    A *time grant* (the null message of null-message algorithms, carried
    on the same call that delivers any actual frames): inject the
    inbound bridged frames, run every owned segment's world up to — but
    excluding — ``horizon``, and return the frames captured for other
    segments plus the earliest pending local event time.

``collect()``
    Per-segment :class:`~repro.sim.topology.SegmentReport` records —
    stats, ledger, telemetry snapshot, builder reports — as picklable
    data.

Two interchangeable implementations: :class:`LocalShard` runs in the
calling process (the ``shards=1`` fallback — and the oracle that the
multiprocess path must match bitwise); :class:`ProcessShard` runs a
:class:`LocalShard` inside a ``multiprocessing`` worker, speaking a
small tuple protocol over a pipe.  The send/receive halves are split so
the orchestrator can grant time to every shard before blocking on any
reply — that concurrency is the whole speedup.

Failure is a first-class event here.  A dead worker (EOF on the pipe)
raises :class:`ShardDiedError`; an unresponsive one (no reply within
the configured deadline) raises :class:`ShardTimeoutError` — both carry
the shard id, the window being waited on, and the last acknowledged
window, and ``close()`` always reaps the child either way.

Checkpointing uses the cheapest state-capture primitive an OS offers:
``fork()``.  Per-segment worlds hold live generator frames — they can
never be pickled — but at a window boundary every shard is quiescent
(the conservative protocol guarantees it), so the worker forks a
*frozen child* whose copy-on-write memory image **is** the checkpoint.
The frozen child closes its copy of the command pipe immediately (so
supervisor-side EOF detection still works), then waits to be orphaned;
if its parent dies, it announces itself on the shard's recovery
listener and becomes the live worker, resuming from the checkpointed
window.  The supervisor replays the journaled grants since that window
— deterministic replay makes the recovered run bitwise identical to an
undisturbed one (the digest oracle enforces this).

Deterministic failure *injection* rides the same protocol: a ``hazard``
spec makes the worker kill itself (``die_at_window``) or hang
(``wedge_at_window``/``wedge_seconds``) at an exact window, so recovery
tests pick their crash sites with a seeded RNG instead of racing real
signals.  Hazards are one-shot: a promoted checkpoint child and a fresh
respawn both run hazard-free, so replay does not crash-loop.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import signal
import time

from .topology import SegmentRuntime, TopologySpec

__all__ = [
    "LocalShard",
    "ProcessShard",
    "ShardError",
    "ShardDiedError",
    "ShardTimeoutError",
    "partition",
]

#: How long the supervisor waits for a frozen checkpoint child to
#: notice it was orphaned and offer itself for promotion.
PROMOTE_TIMEOUT = 5.0


class ShardError(RuntimeError):
    """Base for shard-worker failures, carrying where the run stood."""

    def __init__(
        self,
        message: str,
        *,
        shard_id: int,
        window_index: int,
        last_ack: int,
    ) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        #: the window whose reply was outstanding when the failure surfaced
        self.window_index = window_index
        #: the last window the worker acknowledged before failing
        self.last_ack = last_ack


class ShardDiedError(ShardError):
    """The worker process died (EOF / broken pipe on its connection)."""


class ShardTimeoutError(ShardError):
    """The worker produced no reply within the configured deadline."""


def partition(count: int, shards: int) -> list[list[int]]:
    """Deal ``count`` segment indices round-robin into ``shards`` groups.

    Round-robin keeps neighbouring (often similarly loaded) segments on
    different shards; the assignment is a pure function of the two
    counts, so every run partitions identically.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    groups: list[list[int]] = [[] for _ in range(min(shards, count))]
    for index in range(count):
        groups[index % len(groups)].append(index)
    return groups


class LocalShard:
    """Segments stepped in the calling process."""

    def __init__(self, topology: TopologySpec, indices: list[int]) -> None:
        # Build in index order: construction order is observable (RNG
        # draws, sequence numbers) and must be partition-independent.
        self.runtimes = {
            topology.segments[index].name: SegmentRuntime(topology, index)
            for index in sorted(indices)
        }
        self._reply = None

    # -- stepping -------------------------------------------------------

    def step(self, horizon: float | None, frames: list) -> tuple:
        """Run one window; returns (events fired, egress, next time).

        ``horizon=None`` means "no bridges anywhere": run each world to
        quiescence instead of to a time bound.
        """
        by_segment: dict[str, list] = {}
        for record in frames:
            by_segment.setdefault(record.dst_segment, []).append(record)
        for name, runtime in self.runtimes.items():
            runtime.inject(by_segment.get(name, []))
        fired = 0
        egress: list = []
        for runtime in self.runtimes.values():
            if horizon is None:
                fired += runtime.run_to_quiescence()
            else:
                fired += runtime.run_until(horizon)
            egress.extend(runtime.drain_egress())
        times = [
            t
            for t in (runtime.next_time() for runtime in self.runtimes.values())
            if t is not None
        ]
        return fired, egress, (min(times) if times else None)

    # Split halves, so Local and Process shards drive identically: the
    # orchestrator issues every send, then drains every receive.

    def step_send(self, horizon: float | None, frames: list) -> None:
        self._reply = self.step(horizon, frames)

    def step_recv(self) -> tuple:
        reply, self._reply = self._reply, None
        return reply

    # -- collection -----------------------------------------------------

    def collect(self) -> list:
        return [runtime.collect() for runtime in self.runtimes.values()]

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# the worker side
# ---------------------------------------------------------------------------


def _kill_quietly(pid: int | None, sig: int = signal.SIGKILL) -> None:
    if pid is None:
        return
    try:
        os.kill(pid, sig)
    except OSError:
        pass


def _await_promotion(conn, settings: dict, window: int, pending: tuple):
    """The frozen checkpoint child: park until orphaned, then offer
    this process as the recovered shard.

    Closing the inherited command pipe first is load-bearing — it keeps
    the supervisor's EOF detection crisp (only the live worker holds the
    pipe).  ``pending`` is the reply the parent had computed but may not
    have delivered before dying; it rides the promotion handshake so a
    crash *between compute and send* loses nothing.
    """
    try:
        conn.close()
    except OSError:
        pass
    parent = os.getppid()
    while os.getppid() == parent:
        time.sleep(0.02)
    try:
        fresh = multiprocessing.connection.Client(
            settings["promote_address"], authkey=settings["authkey"]
        )
        fresh.send(("promoted", window, pending))
    except (OSError, EOFError, multiprocessing.AuthenticationError):
        os._exit(0)
    return fresh


def _shard_worker(
    topology: TopologySpec, indices: list[int], conn, settings: dict | None = None
) -> None:
    """Worker main loop: build the shard, then serve step/collect/exit."""
    settings = settings or {}
    hazard = dict(settings.get("hazard") or {})
    interval = settings.get("checkpoint_interval")
    can_checkpoint = (
        hasattr(os, "fork")
        and interval
        and settings.get("promote_address") is not None
    )
    shard = LocalShard(topology, indices)
    # The observability sideband: a second, send-only pipe the worker
    # flushes one bounded progress delta down after every window.  It
    # is strictly best-effort — a vanished aggregator turns the stream
    # off, never the simulation — and it never carries protocol
    # traffic, so the grant channel's ordering is untouched.
    sideband = settings.get("sideband")
    source = None
    if sideband is not None:
        from .obsplane import SidebandSource

        source = SidebandSource(shard, settings.get("shard_id", 0))
    window = 0
    frozen_pid: int | None = None
    try:
        while True:
            message = conn.recv()
            command = message[0]
            if command == "step":
                window += 1
                if hazard.get("die_at_window") == window:
                    os._exit(13)
                if hazard.get("wedge_at_window") == window:
                    time.sleep(float(hazard.get("wedge_seconds", 3600.0)))
                _, horizon, frames = message
                reply = shard.step(horizon, frames)
                checkpoint = None
                if can_checkpoint and window % interval == 0:
                    # Retire the previous checkpoint *before* forking
                    # the new one: at most one frozen child ever exists,
                    # so at most one process can answer a promotion.
                    _kill_quietly(frozen_pid)
                    frozen_pid = None
                    fork_started = time.perf_counter()
                    pid = os.fork()
                    if pid == 0:
                        conn = _await_promotion(
                            conn,
                            settings,
                            window,
                            ("stepped", window) + reply + (None,),
                        )
                        # We are now the live worker, resumed from this
                        # window's state: hazards are spent, and any
                        # checkpoint pid belonged to our dead parent.
                        # The inherited sideband write end (and the
                        # source's cursors, frozen with our state) stay
                        # valid — the stream resumes where it paused.
                        hazard = {}
                        frozen_pid = None
                        continue
                    fork_seconds = time.perf_counter() - fork_started
                    frozen_pid = pid
                    checkpoint = (window, pid, fork_seconds)
                    if source is not None:
                        source.note_checkpoint(window, fork_seconds)
                conn.send(("stepped", window) + reply + (checkpoint,))
                if sideband is not None and source is not None:
                    try:
                        sideband.send(
                            source.delta(
                                window=window, egress_backlog=len(reply[1])
                            )
                        )
                    except (BrokenPipeError, OSError):
                        sideband = None
            elif command == "collect":
                conn.send(("collected", shard.collect()))
            elif command == "exit":
                return
            else:
                conn.send(("error", f"unknown command {command!r}"))
    except (EOFError, KeyboardInterrupt, BrokenPipeError):
        pass
    finally:
        _kill_quietly(frozen_pid)
        if sideband is not None:
            try:
                sideband.close()
            except OSError:
                pass
        try:
            conn.close()
        except OSError:
            pass


def _default_context():
    """Fork where available (cheap, inherits imports); spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and os.name == "posix":
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def _accept_with_timeout(listener, timeout: float):
    """Accept on a ``multiprocessing.connection.Listener`` with a
    deadline (None on timeout or a failed authentication handshake)."""
    try:
        listener._listener._socket.settimeout(timeout)
    except AttributeError:
        return None
    try:
        return listener.accept()
    except (OSError, EOFError, multiprocessing.AuthenticationError):
        return None


class _PidHandle:
    """A process-like handle over a bare pid.

    A promoted checkpoint child is not a ``multiprocessing.Process`` —
    it was forked by the worker, then orphaned — so the supervisor
    drives it through plain signals.  ``join`` polls liveness (orphans
    are reaped by init, not by us).
    """

    def __init__(self, pid: int) -> None:
        self.pid = pid

    def is_alive(self) -> bool:
        try:
            os.kill(self.pid, 0)
        except OSError:
            return False
        return True

    def terminate(self) -> None:
        _kill_quietly(self.pid, signal.SIGTERM)

    def kill(self) -> None:
        _kill_quietly(self.pid, signal.SIGKILL)

    def join(self, timeout: float | None = None) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.is_alive():
            if deadline is not None and time.monotonic() >= deadline:
                return
            time.sleep(0.01)


class ProcessShard:
    """A :class:`LocalShard` behind a pipe, in its own process.

    ``timeout`` bounds every reply wait (None blocks forever, the
    legacy behaviour).  ``checkpoint_interval`` arms fork-based
    checkpointing every that-many windows; :meth:`recover` then brings
    a dead or wedged shard back — promoting the frozen checkpoint child
    when one survives, respawning from scratch otherwise — and replays
    the journaled grants the caller hands it.  ``hazard`` injects a
    deterministic failure (``die_at_window``, ``wedge_at_window`` +
    ``wedge_seconds``) for recovery tests.
    """

    def __init__(
        self,
        topology: TopologySpec,
        indices: list[int],
        *,
        context=None,
        shard_id: int = 0,
        timeout: float | None = None,
        checkpoint_interval: int | None = None,
        hazard: dict | None = None,
        sideband: bool = False,
    ) -> None:
        context = context or _default_context()
        if context.get_start_method() == "spawn":
            for index in indices:
                builder = topology.segments[index].builder
                if not isinstance(builder, str):
                    raise ValueError(
                        "spawn-based shards need string builder references "
                        f"(segment {topology.segments[index].name!r} has a "
                        "bare callable); use 'module:function' paths"
                    )
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ValueError("checkpoint interval must be at least 1")
        self.indices = list(indices)
        self.shard_id = shard_id
        self.timeout = timeout
        self.checkpoint_interval = checkpoint_interval
        self.sideband = bool(sideband)
        self.windows_sent = 0
        self.last_ack = 0
        self.restarts = 0
        self.checkpoint_forks = 0
        self.checkpoint_fork_seconds = 0.0
        self._topology = topology
        self._context = context
        self._hazard = dict(hazard) if hazard else None
        self._checkpoint: tuple[int, int] | None = None  # (window, pid)
        self._pending_reply: tuple | None = None
        self._send_failed = False
        self._failed = False
        self._listener = None
        self._sideband = None
        self._sideband_buffer: list = []
        self._authkey: bytes | None = None
        if checkpoint_interval is not None and hasattr(os, "fork"):
            self._authkey = bytes(multiprocessing.current_process().authkey)
            self._listener = multiprocessing.connection.Listener(
                family="AF_UNIX", authkey=self._authkey
            )
        self._spawn(hazard=self._hazard)

    # -- spawning --------------------------------------------------------

    def _settings(self, hazard: dict | None) -> dict:
        settings: dict = {"shard_id": self.shard_id}
        if hazard:
            settings["hazard"] = dict(hazard)
        if self._listener is not None:
            settings["checkpoint_interval"] = self.checkpoint_interval
            settings["promote_address"] = self._listener.address
            settings["authkey"] = self._authkey
        return settings

    def _spawn(self, *, hazard: dict | None) -> None:
        settings = self._settings(hazard)
        sideband_child = None
        if self.sideband:
            # A fresh stream per worker generation: a respawned worker
            # rebuilds its cursors from scratch, so its deltas must not
            # interleave with the dead predecessor's on a shared pipe.
            # (A *promoted* checkpoint child keeps the old pipe — it
            # inherited the write end at fork time.)
            if self._sideband is not None:
                try:
                    self._sideband.close()
                except OSError:
                    pass
            self._sideband, sideband_child = self._context.Pipe(duplex=False)
            settings["sideband"] = sideband_child
        self._conn, child = self._context.Pipe()
        self._process = self._context.Process(
            target=_shard_worker,
            args=(self._topology, self.indices, child, settings),
            daemon=True,
        )
        self._process.start()
        child.close()
        if sideband_child is not None:
            sideband_child.close()
        self._send_failed = False
        self._failed = False

    # -- the wire protocol ----------------------------------------------

    def step_send(self, horizon: float | None, frames: list) -> None:
        self.windows_sent += 1
        try:
            self._conn.send(("step", horizon, frames))
        except (BrokenPipeError, OSError):
            # Surface the death from step_recv, where the caller is
            # already prepared to catch typed shard errors.
            self._send_failed = True

    def _fail_died(self) -> None:
        self._failed = True
        raise ShardDiedError(
            f"shard {self.shard_id} died at window {self.windows_sent} "
            f"(last acknowledged window {self.last_ack})",
            shard_id=self.shard_id,
            window_index=self.windows_sent,
            last_ack=self.last_ack,
        )

    def _pump_sideband(self) -> None:
        """Drain every queued sideband delta into the local buffer.

        Called on every reply wait (including recovery replay), which
        doubles as backpressure relief: the worker's per-window delta
        send can never fill the pipe and stall the step protocol,
        because the supervisor empties it at least once per window.  A
        closed stream (worker death) just ends the pumping — the
        deltas already buffered stay readable.
        """
        conn = self._sideband
        if conn is None:
            return
        try:
            while conn.poll(0):
                self._sideband_buffer.append(conn.recv())
        except (EOFError, OSError):
            try:
                conn.close()
            except OSError:
                pass
            self._sideband = None

    def drain_sideband(self) -> list:
        """Hand back (and clear) the buffered sideband deltas."""
        self._pump_sideband()
        deltas, self._sideband_buffer = self._sideband_buffer, []
        return deltas

    def _recv(self) -> tuple:
        self._pump_sideband()
        if self._send_failed:
            self._fail_died()
        try:
            if self.timeout is not None and not self._conn.poll(self.timeout):
                self._failed = True
                raise ShardTimeoutError(
                    f"shard {self.shard_id} gave no reply within "
                    f"{self.timeout}s at window {self.windows_sent} "
                    f"(last acknowledged window {self.last_ack})",
                    shard_id=self.shard_id,
                    window_index=self.windows_sent,
                    last_ack=self.last_ack,
                )
            return self._conn.recv()
        except EOFError:
            self._fail_died()
        except (BrokenPipeError, ConnectionResetError):
            self._fail_died()

    def step_recv(self) -> tuple:
        reply = self._recv()
        if reply[0] != "stepped":
            raise RuntimeError(f"shard protocol error: {reply!r}")
        _, window, fired, egress, next_time, checkpoint = reply
        self.last_ack = window
        if checkpoint is not None:
            window_taken, pid, fork_seconds = checkpoint
            self._checkpoint = (window_taken, pid)
            self.checkpoint_forks += 1
            self.checkpoint_fork_seconds += fork_seconds
        return fired, egress, next_time

    def collect(self) -> list:
        try:
            self._conn.send(("collect",))
        except (BrokenPipeError, OSError):
            self._send_failed = True
        reply = self._recv()
        if reply[0] != "collected":
            raise RuntimeError(f"shard protocol error: {reply!r}")
        return reply[1]

    # -- recovery --------------------------------------------------------

    def _reap(self) -> None:
        """Take the (dead or wedged) worker down for certain and drop
        its connection.  Killing a wedged worker is what orphans its
        frozen checkpoint child and makes promotion possible."""
        process = self._process
        if process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
        else:
            process.join(timeout=1.0)
        try:
            self._conn.close()
        except OSError:
            pass

    def _promote(self) -> int | None:
        """Adopt the frozen checkpoint child as the live worker.

        Returns the window its state resumes from, or None when no
        checkpoint survives (then the caller respawns from scratch).
        """
        checkpoint, self._checkpoint = self._checkpoint, None
        self._pending_reply = None
        if checkpoint is None or self._listener is None:
            return None
        window, pid = checkpoint
        conn = _accept_with_timeout(self._listener, PROMOTE_TIMEOUT)
        if conn is None:
            _kill_quietly(pid)
            return None
        try:
            if not conn.poll(PROMOTE_TIMEOUT):
                raise EOFError
            hello = conn.recv()
        except (EOFError, OSError):
            conn.close()
            _kill_quietly(pid)
            return None
        if not (
            isinstance(hello, tuple) and len(hello) == 3 and hello[0] == "promoted"
        ):
            conn.close()
            _kill_quietly(pid)
            return None
        self._conn = conn
        self._process = _PidHandle(pid)
        self._send_failed = False
        self._failed = False
        self._pending_reply = hello[2]
        return hello[1]

    def revive(self) -> int:
        """Bring a failed shard back; returns the window index its
        state resumes from (0 = fresh process, replay everything)."""
        self.restarts += 1
        self._reap()
        resume = self._promote()
        if resume is None:
            self._spawn(hazard=None)
            resume = 0
        self.windows_sent = resume
        self.last_ack = resume
        return resume

    def recover(self, grants: list, *, final: str = "step") -> tuple:
        """Revive and deterministically replay ``grants`` (the journal
        of every ``(horizon, frames)`` this shard was ever sent).

        With ``final="step"`` the last grant's reply is the one the
        caller was waiting for and is returned; with ``final="collect"``
        every grant is replayed and a fresh ``collect()`` result is
        returned.  Also returns a bookkeeping dict (resume window,
        replay count, whether a checkpoint was used).
        """
        resume = self.revive()
        pending, self._pending_reply = self._pending_reply, None
        info = {
            "resumed_from": resume,
            "checkpointed": resume > 0,
            "replayed": 0,
        }
        if final == "step":
            if resume >= len(grants):
                # The worker died after computing the final window but
                # before replying; the frozen child carried that reply
                # across the promotion handshake.
                if pending is None or pending[1] != len(grants):
                    raise RuntimeError(
                        f"shard {self.shard_id} resumed past the journal "
                        f"({resume} > {len(grants)}) with no pending reply"
                    )
                self.last_ack = pending[1]
                return (pending[2], pending[3], pending[4]), info
            for horizon, frames in grants[resume:-1]:
                self.step_send(horizon, frames)
                self.step_recv()
            horizon, frames = grants[-1]
            self.step_send(horizon, frames)
            reply = self.step_recv()
            info["replayed"] = len(grants) - resume
            return reply, info
        for horizon, frames in grants[resume:]:
            self.step_send(horizon, frames)
            self.step_recv()
        info["replayed"] = len(grants) - resume
        return self.collect(), info

    # -- teardown --------------------------------------------------------

    def close(self) -> None:
        if not self._failed:
            try:
                self._conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
            self._process.join(timeout=5.0)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5.0)
            if self._process.is_alive():
                self._process.kill()
                self._process.join(timeout=2.0)
        if self._checkpoint is not None:
            _kill_quietly(self._checkpoint[1])
            self._checkpoint = None
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._sideband is not None:
            try:
                self._sideband.close()
            except OSError:
                pass
            self._sideband = None
        try:
            self._conn.close()
        except OSError:
            pass
