"""Per-host event counters — the quantities figures 2-1/2-2/3-4/3-5 draw.

The paper's figures 2-1, 2-2, 3-4 and 3-5 are diagrams of *how many*
context switches, system calls and data transfers each demultiplexing
model costs per packet; these counters make those diagrams measurable.
Benchmarks snapshot/diff them around a workload and report events per
packet.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable, Mapping

__all__ = ["KernelStats", "merge_stats"]


@dataclass
class KernelStats:
    """Cumulative counters for one simulated kernel."""

    cpu_time: float = 0.0          #: total CPU seconds charged
    context_switches: int = 0
    syscalls: int = 0
    domain_crossings: int = 0      #: user<->kernel boundary crossings
    copies: int = 0                #: kernel<->user or pipe data transfers
    bytes_copied: int = 0
    wakeups: int = 0
    interrupts: int = 0            #: received-frame interrupts serviced
    frames_sent: int = 0
    frames_received: int = 0
    packets_unclaimed: int = 0     #: frames no protocol or filter wanted
    signals_posted: int = 0
    filter_predicates: int = 0     #: filters applied across all packets
    filter_instructions: int = 0   #: interpreter steps across all packets

    def snapshot(self) -> "KernelStats":
        """A copy, for before/after differencing around a workload."""
        return KernelStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def delta(self, earlier: "KernelStats") -> "KernelStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return KernelStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def rates(self, earlier: "KernelStats", seconds: float) -> dict[str, float]:
        """Per-second rates of everything accumulated since ``earlier``.

        The windowed-rate helper the telemetry sampler and the bench
        scenarios share: snapshot before, call after, no hand-written
        per-field subtraction.  ``cpu_time``'s rate is CPU seconds per
        second — utilization.
        """
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        delta = self.delta(earlier)
        return {
            f.name: getattr(delta, f.name) / seconds for f in fields(delta)
        }

    def per_packet(self, packets: int) -> dict[str, float]:
        """Events per packet — the unit the paper's figures use."""
        if packets <= 0:
            raise ValueError("packets must be positive")
        return {
            f.name: getattr(self, f.name) / packets for f in fields(self)
        }

    def merge(self, *others: "KernelStats") -> "KernelStats":
        """Field-wise sum — the aggregate view over several kernels.

        Returns a new instance; the operands are untouched.  Summation
        order follows the argument order, so merging shard results in a
        fixed (segment-name) order reproduces the float sums bitwise.
        """
        merged = self.snapshot()
        for other in others:
            for f in fields(merged):
                setattr(
                    merged, f.name,
                    getattr(merged, f.name) + getattr(other, f.name),
                )
        return merged


def merge_stats(
    maps: Iterable[Mapping[str, KernelStats]],
) -> dict[str, KernelStats]:
    """Combine per-host stats maps from disjoint worlds (shards).

    Hosts are whole units — two shards may never both account for the
    same host, so a duplicate name is a partitioning bug and raises
    rather than silently double-counting.  Values are copied
    (``snapshot``); an empty input yields an empty map.
    """
    merged: dict[str, KernelStats] = {}
    for stats_map in maps:
        for host, stats in stats_map.items():
            if host in merged:
                raise ValueError(
                    f"host {host!r} appears in more than one stats map"
                )
            merged[host] = stats.snapshot()
    return merged
