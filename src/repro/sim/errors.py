"""Errno-style errors the simulated kernel raises into processes.

A syscall that fails is reported the Unix way: the kernel throws one of
these into the blocked generator, and the process either handles it (the
"write; read with timeout; retry if necessary" paradigm of section 3)
or dies with it, in which case :attr:`repro.sim.process.Process.error`
records it.
"""

from __future__ import annotations

__all__ = [
    "SimError",
    "SimTimeout",
    "BadFileDescriptor",
    "NoSuchDevice",
    "DeviceBusy",
    "InvalidArgument",
    "BrokenPipe",
    "WouldBlock",
    "ProcessKilled",
]


class SimError(Exception):
    """Base class of all simulated-kernel errors."""


class SimTimeout(SimError):
    """A blocking read's timeout expired (section 3: "if no packet
    arrives during a timeout period, the read call terminates and
    reports an error")."""


class BadFileDescriptor(SimError):
    """EBADF: the fd is not open in this process."""


class NoSuchDevice(SimError):
    """ENODEV/ENOENT: no device with that name is configured."""


class DeviceBusy(SimError):
    """EBUSY: the device (e.g. a packet-filter minor) is already open."""


class InvalidArgument(SimError):
    """EINVAL: bad ioctl command or argument."""


class BrokenPipe(SimError):
    """EPIPE: write on a pipe with no reader."""


class WouldBlock(SimError):
    """EWOULDBLOCK: non-blocking operation found nothing ready."""


class ProcessKilled(SimError):
    """The process was forcibly terminated (:meth:`SimKernel.kill`) —
    the simulated SIGKILL.  Recorded as the victim's ``error``; never
    raised *into* the body, which is closed instead."""
