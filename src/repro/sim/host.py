"""A host: one kernel, one NIC, its processes, and its devices.

This is the assembly layer — it owns no behaviour of its own, it just
wires a :class:`SimKernel` to a :class:`NIC` on a segment and offers the
conveniences every test, example and benchmark wants: spawn a process,
install the packet filter, install the kernel-resident network stack.
"""

from __future__ import annotations

from typing import Any, Generator

from ..net.ethernet import LinkSpec
from ..net.nic import NIC
from .costs import CostModel
from .kernel import SimKernel
from .process import Process

__all__ = ["Host"]


class Host:
    """One simulated machine on the segment."""

    def __init__(
        self,
        name: str,
        address: bytes,
        link: LinkSpec,
        scheduler,
        costs: CostModel,
        *,
        promiscuous: bool = False,
        input_queue_limit: int = 16,
    ) -> None:
        self.name = name
        self.address = address
        self.link = link
        self.kernel = SimKernel(scheduler, costs, name=name)
        self.nic = NIC(
            address,
            link,
            promiscuous=promiscuous,
            input_queue_limit=input_queue_limit,
        )
        self.kernel.attach_nic(self.nic)
        self._packet_filter = None

    # -- processes ----------------------------------------------------------

    def spawn(self, name: str, body: Generator) -> Process:
        """Start a user process on this host."""
        return self.kernel.spawn(name, body)

    @property
    def stats(self):
        return self.kernel.stats

    # -- overload control ---------------------------------------------------

    def enable_overload(self, policy=None, pool=None):
        """Install receive-overload control on this host.

        ``policy`` is an :class:`repro.sim.overload.RxPolicy` (defaults
        to one with stock parameters) and ``pool`` an optional
        :class:`repro.sim.overload.BufferPool`.  With a policy
        installed the NIC's receive interrupts become CPU-gated and the
        budgeted-polling/early-drop machinery arms; ports opened after
        a pool is installed take their queue buffers from it.  Returns
        ``(policy, pool)`` as installed.
        """
        from .overload import RxPolicy  # assembly-time import

        if policy is None:
            policy = RxPolicy()
        self.kernel.rx_policy = policy
        if pool is not None:
            self.kernel.buffer_pool = pool
            self.kernel.publish_gauges(
                "pool.", pool.telemetry_gauges(), unit="buffers"
            )
        return policy, self.kernel.buffer_pool

    # -- the packet filter device ------------------------------------------------

    def install_packet_filter(self, device_name: str = "pf", **demux_options: Any):
        """Install the packet-filter pseudo-device driver (section 4).

        Returns the driver; processes then ``Open(device_name)`` to get
        a port.  ``demux_options`` pass through to
        :class:`repro.core.demux.PacketFilterDemux` (engine selection,
        decision table, short-circuit mode...).
        """
        from ..core.device import PacketFilterDevice  # assembly-time import

        if self._packet_filter is not None:
            raise RuntimeError(f"{self.name} already has a packet filter")
        driver = PacketFilterDevice(self, **demux_options)
        self.kernel.register_device(device_name, driver)
        self.kernel.register_packet_filter(driver)
        self._packet_filter = driver
        return driver

    @property
    def packet_filter(self):
        if self._packet_filter is None:
            raise RuntimeError(f"{self.name} has no packet filter installed")
        return self._packet_filter

    # -- the kernel-resident stack --------------------------------------------

    def install_kernel_stack(self, ip_address: int | None = None):
        """Install the kernel-resident IP/UDP/TCP stack (the baseline
        the paper compares against).  Returns the stack object."""
        from ..kernelnet.ipstack import KernelNetworkStack

        stack = KernelNetworkStack(self, ip_address=ip_address)
        return stack

    def __repr__(self) -> str:
        return f"Host({self.name!r}, {self.address.hex()})"
