"""The world-level seed namespace: derived, independent child streams.

``World(seed=...)`` historically seeded exactly one generator — the
segment's.  A sharded topology needs many: one per segment RNG, one per
chaos direction, one per synthetic-workload generator — and they must be
*partition-independent*: an N-shard run and a 1-world run of the same
seeded topology must hand every consumer the identical stream, no matter
which process it lands in.

:func:`derive_seed` provides that: a splitmix64-style mix over the root
seed and a path of labels.  Properties the tests pin down:

* **deterministic** — a pure function of ``(root, *path)``; no ``hash()``
  (which ``PYTHONHASHSEED`` salts per process), no global state;
* **independent** — distinct paths give uncorrelated 64-bit outputs
  (splitmix64 is the stream-splitting mixer of the JDK/xoshiro family);
* **hierarchical** — ``derive_seed(root, "segment", name)`` in the
  orchestrator equals the same call in a shard subprocess, so every
  partition draws identical randomness.

String labels are folded in UTF-8; ints and bytes fold as themselves.
"""

from __future__ import annotations

import random

__all__ = ["derive_seed", "derive_rng", "SeedPart"]

SeedPart = "str | int | bytes"

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _mix(z: int) -> int:
    """One splitmix64 output scramble (Steele/Lea/Flood 2014)."""
    z &= _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def _fold(state: int, data: bytes) -> int:
    """Absorb ``data`` into ``state``, 8 bytes per splitmix step.

    A length-prefix step keeps ``("ab", "c")`` and ``("a", "bc")``
    distinct — the path is a sequence of labels, not a byte soup.
    """
    state = _mix(state + _GOLDEN * (len(data) + 1))
    for offset in range(0, len(data), 8):
        chunk = int.from_bytes(data[offset : offset + 8], "big")
        state = _mix((state + _GOLDEN) ^ chunk)
    return state


def _int_bytes(value: int) -> bytes:
    """Shortest two's-complement encoding (length-prefixed by _fold)."""
    return value.to_bytes(value.bit_length() // 8 + 1, "big", signed=True)


def derive_seed(root: int, *path: "str | int | bytes") -> int:
    """A 64-bit child seed for ``path`` under ``root``.

    ``derive_seed(7, "segment", "lan0")`` is stable across processes,
    platforms and ``PYTHONHASHSEED`` values, and independent from
    ``derive_seed(7, "segment", "lan1")`` or ``derive_seed(7, "chaos",
    "lan0")``.
    """
    state = _fold(_mix(_GOLDEN), _int_bytes(root))
    for part in path:
        if isinstance(part, str):
            data = part.encode("utf-8")
        elif isinstance(part, bytes):
            data = part
        elif isinstance(part, int):
            data = _int_bytes(part)
        else:
            raise TypeError(
                f"seed path parts must be str/int/bytes, got {type(part)!r}"
            )
        state = _fold(state, data)
    return _mix(state + _GOLDEN)


def derive_rng(root: int, *path: "str | int | bytes") -> random.Random:
    """A ``random.Random`` seeded from :func:`derive_seed`."""
    return random.Random(derive_seed(root, *path))
