"""Rate-limited character display devices — table 6-7's bottleneck.

"The first two rows of the table show throughput using an
MC68010-based workstation capable of displaying about 3350 characters
per second.  ...  The last two rows, measured with characters displayed
on a 9600 baud terminal ..."

A :class:`DisplayDevice` drains written characters at a fixed rate; a
writer blocks until its characters have been displayed.  The device has
its own timeline (a terminal drains independently of the CPU), so
protocol work and display output overlap the way they did in the
measurement — which is why Telnet throughput is display-limited, not
network-limited, and BSP ≈ TCP there.
"""

from __future__ import annotations

from .kernel import DeviceDriver, DeviceHandle, SimKernel
from .ledger import Primitive
from .process import Process, Write

__all__ = [
    "DisplayDevice",
    "WORKSTATION_CPS",
    "TERMINAL_9600_CPS",
]

WORKSTATION_CPS = 3350
"""The MC68010 workstation display rate of table 6-7."""

TERMINAL_9600_CPS = 960
"""A 9600-baud terminal: 9600 bits/s / 10 bits per character."""


class DisplayDevice(DeviceDriver):
    """A shared output-only character device with a fixed drain rate.

    ``consumes_cpu=True`` models a workstation's bitmap display, where
    "displaying" is software rendering on the host CPU (the MC68010
    workstation's 3350 cps *is* a CPU cost); ``False`` models a serial
    terminal, where the UART drains on its own and the CPU is free.
    """

    def __init__(self, chars_per_second: float, *, consumes_cpu: bool = False) -> None:
        if chars_per_second <= 0:
            raise ValueError("display rate must be positive")
        self.chars_per_second = chars_per_second
        self.consumes_cpu = consumes_cpu
        self.characters_displayed = 0
        self._busy_until = 0.0

    def open(self, kernel: SimKernel, process: Process) -> "DisplayHandle":
        return DisplayHandle(self, kernel)

    def drain_time(self, nchars: int, now: float) -> float:
        """When ``nchars`` written at ``now`` finish displaying."""
        start = max(now, self._busy_until)
        self._busy_until = start + nchars / self.chars_per_second
        return self._busy_until


class DisplayHandle(DeviceHandle):
    def __init__(self, device: DisplayDevice, kernel: SimKernel) -> None:
        self.device = device
        self.kernel = kernel

    def write(self, process: Process, call: Write) -> None:
        data = bytes(call.data)
        # One kernel copy (it is a character device write)...
        self.kernel.charge_copy(len(data), component="display")
        self.device.characters_displayed += len(data)
        if self.device.consumes_cpu:
            # Bitmap rendering: the CPU does the displaying.
            self.kernel.account(
                Primitive.DISPLAY,
                len(data) / self.device.chars_per_second,
                quantity=len(data),
                component="display",
            )
            self.kernel.complete(process, len(data))
            return
        # Serial terminal: the writer sleeps until the UART catches up.
        done_at = self.device.drain_time(len(data), self.kernel.scheduler.now)
        self.kernel.scheduler.schedule_at(
            done_at, self.kernel.complete, process, len(data)
        )
