"""The conservative-parallel orchestrator: windows, grants, merging.

Drives a :class:`~repro.sim.topology.TopologySpec` to quiescence as a
sequence of synchronized time windows:

1. **Grant.**  Every shard is granted the same horizon ``H`` (sent with
   any bridged frames destined for its segments) and runs each of its
   worlds up to, but excluding, ``H``.
2. **Exchange.**  Shards return the frames their bridge endpoints
   captured.  A frame captured at ``t`` delivers at ``t + delay``, and
   every window is at most the smallest bridge delay wide, so captured
   frames always deliver at-or-after the *next* horizon — no shard ever
   receives an event in its past.  That is the classic lookahead
   argument of conservative (Chandy–Misra–Bryant) simulation; the
   grant messages double as null messages.
3. **Advance.**  The next horizon is the smallest window-multiple
   strictly after the earliest pending event anywhere (idle stretches
   are skipped in one hop, busy ones advance window by window).

Because horizons, frame routing and injection order are computed
identically whether shards are in-process (``shards=1``) or separate
processes, the merged result is bitwise identical across partitionings
— the property the difftest oracle (:mod:`repro.difftest.sharding`)
checks, and what makes the parallel speedup trustworthy.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from .ledger import Ledger
from .shard import LocalShard, ProcessShard, partition
from .stats import KernelStats, merge_stats
from .telemetry import TelemetrySnapshot
from .topology import SegmentReport, TopologySpec

__all__ = ["TopologyResult", "run_topology"]


@dataclass
class TopologyResult:
    """The whole-topology view, reassembled from per-segment reports."""

    spec: TopologySpec
    shards: int
    stats: dict[str, KernelStats]          #: merged per-host counters
    total: KernelStats                     #: field-wise sum over hosts
    ledger: Ledger | None                  #: merged (spec-order) ledger
    telemetry: TelemetrySnapshot | None
    reports: dict[str, dict]               #: per-segment builder reports
    wire: dict[str, dict]                  #: per-segment cable counters
    events_fired: int
    now: float                             #: latest per-world clock
    windows: int                           #: synchronization rounds run
    wall_seconds: float
    segment_reports: list = field(default_factory=list, repr=False)


def _merge_reports(
    spec: TopologySpec,
    by_name: dict[str, SegmentReport],
    *,
    shards: int,
    windows: int,
    wall_seconds: float,
) -> TopologyResult:
    """Reassemble the whole-world view, always in spec order.

    Merging in spec order — never shard or arrival order — is what
    keeps float sums and remapped ledger packet ids identical no matter
    how segments were partitioned.
    """
    ordered = [by_name[segment.name] for segment in spec.segments]
    stats = merge_stats([report.stats for report in ordered])
    host_stats = [stats[name] for name in stats]
    total = (
        host_stats[0].merge(*host_stats[1:]) if host_stats else KernelStats()
    )
    ledger = None
    if spec.ledger:
        ledger = Ledger()
        for report in ordered:
            if report.ledger is not None:
                ledger.merge(report.ledger)
    telemetry = None
    if spec.telemetry:
        telemetry = TelemetrySnapshot()
        for report in ordered:
            if report.telemetry is not None:
                telemetry.merge(report.telemetry)
    return TopologyResult(
        spec=spec,
        shards=shards,
        stats=stats,
        total=total,
        ledger=ledger,
        telemetry=telemetry,
        reports={report.name: report.report for report in ordered},
        wire={report.name: report.wire for report in ordered},
        events_fired=sum(report.events_fired for report in ordered),
        now=max((report.now for report in ordered), default=0.0),
        windows=windows,
        wall_seconds=wall_seconds,
        segment_reports=ordered,
    )


def run_topology(
    spec: TopologySpec,
    *,
    shards: int = 1,
    until: float | None = None,
    max_windows: int = 1_000_000,
    mp_context=None,
) -> TopologyResult:
    """Run ``spec`` to quiescence on ``shards`` processes.

    ``shards=1`` runs everything in-process — same windowed algorithm,
    same per-segment worlds, zero IPC — and is the bitwise oracle for
    any larger shard count.  ``until`` optionally stops once every
    pending event lies beyond that simulated time.  ``max_windows``
    bounds the synchronization rounds (a livelocked topology should
    fail loudly).
    """
    spec.validate()
    if shards < 1:
        raise ValueError("shards must be at least 1")
    started = time.perf_counter()
    groups = partition(len(spec.segments), shards)
    if len(groups) <= 1 or shards == 1:
        handles = [LocalShard(spec, list(range(len(spec.segments))))]
    else:
        handles = [
            ProcessShard(spec, group, context=mp_context) for group in groups
        ]
    shard_of: dict[str, int] = {}
    for shard_index, group in enumerate(
        [list(range(len(spec.segments)))] if len(handles) == 1 else groups
    ):
        for segment_index in group:
            shard_of[spec.segments[segment_index].name] = shard_index

    window = spec.window()
    windows = 0
    try:
        if window is None:
            # No bridges: segments are fully independent; one
            # quiescence grant each, no exchanges.
            for handle in handles:
                handle.step_send(None, [])
            for handle in handles:
                handle.step_recv()
            windows = 1
        else:
            pending: list = []
            window_index = 0
            horizon = 0.0   # priming grant: deliver nothing, report next_time
            while True:
                if windows >= max_windows:
                    raise RuntimeError(
                        f"exceeded {max_windows} synchronization windows "
                        f"(clock at {horizon}); topology may be livelocked"
                    )
                outbound: list[list] = [[] for _ in handles]
                for record in pending:
                    outbound[shard_of[record.dst_segment]].append(record)
                for handle, frames in zip(handles, outbound):
                    handle.step_send(horizon, frames)
                egress: list = []
                next_times: list[float] = []
                for handle in handles:
                    _, shard_egress, shard_next = handle.step_recv()
                    egress.extend(shard_egress)
                    if shard_next is not None:
                        next_times.append(shard_next)
                windows += 1
                next_times.extend(record.deliver_at for record in egress)
                if not next_times:
                    break
                earliest = min(next_times)
                if until is not None and earliest > until:
                    break
                pending = egress
                # The smallest window-multiple strictly after
                # ``earliest``: floor(e/W)*W <= e < (floor(e/W)+1)*W,
                # and that upper bound is <= e + W, so frames captured
                # in the window (all at times >= earliest, with
                # delay >= W) still deliver at or after the horizon
                # that follows it.  Integer window indices keep the
                # horizon sequence free of accumulated float error.
                window_index = max(
                    window_index + 1, math.floor(earliest / window) + 1
                )
                horizon = window_index * window
        by_name: dict[str, SegmentReport] = {}
        for handle in handles:
            for report in handle.collect():
                by_name[report.name] = report
    finally:
        for handle in handles:
            handle.close()
    return _merge_reports(
        spec,
        by_name,
        shards=len(handles),
        windows=windows,
        wall_seconds=time.perf_counter() - started,
    )
