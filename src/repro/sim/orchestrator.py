"""The conservative-parallel orchestrator: windows, grants, merging.

Drives a :class:`~repro.sim.topology.TopologySpec` to quiescence as a
sequence of synchronized time windows:

1. **Grant.**  Every shard is granted the same horizon ``H`` (sent with
   any bridged frames destined for its segments) and runs each of its
   worlds up to, but excluding, ``H``.
2. **Exchange.**  Shards return the frames their bridge endpoints
   captured.  A frame captured at ``t`` delivers at ``t + delay``, and
   every window is at most the smallest bridge delay wide, so captured
   frames always deliver at-or-after the *next* horizon — no shard ever
   receives an event in its past.  That is the classic lookahead
   argument of conservative (Chandy–Misra–Bryant) simulation; the
   grant messages double as null messages.
3. **Advance.**  The next horizon is the smallest window-multiple
   strictly after the earliest pending event anywhere (idle stretches
   are skipped in one hop, busy ones advance window by window).

Because horizons, frame routing and injection order are computed
identically whether shards are in-process (``shards=1``) or separate
processes, the merged result is bitwise identical across partitionings
— the property the difftest oracle (:mod:`repro.difftest.sharding`)
checks, and what makes the parallel speedup trustworthy.

Crash recovery rides the same determinism.  With a
:class:`RecoveryConfig`, the orchestrator journals every grant it sends
each shard; when a shard dies (pipe EOF) or wedges (reply deadline
blown), the supervisor revives it — promoting the shard's fork-based
checkpoint child when one survives, respawning from scratch otherwise —
and replays the journal from the resume window.  Replaying identical
grants through identical per-segment worlds reproduces identical state,
so a recovered run's digest is bitwise equal to an undisturbed one.
Restarts are recorded on the result and surfaced as ``shard_restart``
alerts in the merged telemetry stream (which the digest deliberately
excludes).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from .ledger import Ledger
from .obsplane import ShardSyncStats, SidebandSource, SyncProfile
from .shard import (
    LocalShard,
    ProcessShard,
    ShardDiedError,
    ShardTimeoutError,
    partition,
)
from .stats import KernelStats, merge_stats
from .telemetry import LogHistogram, TelemetrySnapshot
from .topology import SegmentReport, TopologySpec

__all__ = ["RecoveryConfig", "TopologyResult", "run_topology"]


@dataclass(frozen=True)
class RecoveryConfig:
    """Supervisor policy for crash-recoverable sharded runs.

    ``checkpoint_interval`` is in windows (None disables checkpointing:
    every recovery is a fresh respawn replaying the whole journal).
    ``recv_timeout`` is the per-window reply deadline that classifies a
    shard as wedged.  Restart attempts back off exponentially from
    ``backoff_base`` (first retry is immediate), capped at
    ``backoff_cap`` seconds.
    """

    checkpoint_interval: int | None = 8
    recv_timeout: float | None = 30.0
    max_restarts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0


@dataclass
class TopologyResult:
    """The whole-topology view, reassembled from per-segment reports."""

    spec: TopologySpec
    shards: int
    stats: dict[str, KernelStats]          #: merged per-host counters
    total: KernelStats                     #: field-wise sum over hosts
    ledger: Ledger | None                  #: merged (spec-order) ledger
    telemetry: TelemetrySnapshot | None
    reports: dict[str, dict]               #: per-segment builder reports
    wire: dict[str, dict]                  #: per-segment cable counters
    events_fired: int
    now: float                             #: latest per-world clock
    windows: int                           #: synchronization rounds run
    wall_seconds: float
    restarts: list = field(default_factory=list)  #: shard revival records
    segment_reports: list = field(default_factory=list, repr=False)
    #: sync-protocol profile (grant waits, null grants, egress depth,
    #: checkpoint costs); always collected — per-window wall clocks on
    #: the supervisor, so free for the worlds and outside the digest
    sync: SyncProfile | None = None
    #: per-shard breakdown: segments owned, windows acknowledged,
    #: events fired, final clock, restart count
    shard_details: list = field(default_factory=list)
    #: merged span-latency histogram (None without a ledger): the
    #: bounded-memory p50/p95/p99 source, fold of per-segment histograms
    span_hist: LogHistogram | None = None

    @property
    def recovered_shards(self) -> list[int]:
        """Shard ids the supervisor revived at least once."""
        return sorted({record["shard"] for record in self.restarts})

    @property
    def wall_per_window(self) -> float:
        """Mean wall seconds per synchronization window."""
        return self.wall_seconds / self.windows if self.windows else 0.0


def _merge_reports(
    spec: TopologySpec,
    by_name: dict[str, SegmentReport],
    *,
    shards: int,
    windows: int,
    wall_seconds: float,
    restarts: list | None = None,
    sync: SyncProfile | None = None,
    shard_details: list | None = None,
) -> TopologyResult:
    """Reassemble the whole-world view, always in spec order.

    Merging in spec order — never shard or arrival order — is what
    keeps float sums and remapped ledger packet ids identical no matter
    how segments were partitioned.
    """
    ordered = [by_name[segment.name] for segment in spec.segments]
    stats = merge_stats([report.stats for report in ordered])
    host_stats = [stats[name] for name in stats]
    total = (
        host_stats[0].merge(*host_stats[1:]) if host_stats else KernelStats()
    )
    ledger = None
    if spec.ledger:
        ledger = Ledger()
        for report in ordered:
            if report.ledger is not None:
                ledger.merge(report.ledger)
    # Span-latency percentiles without raw-sample retention: fold the
    # per-segment histograms (bucket addition is order-free, so this
    # equals histogramming the merged ledger — a test pins that).
    span_hist = None
    for report in ordered:
        if report.span_hist is None:
            continue
        if span_hist is None:
            span_hist = LogHistogram(
                floor=report.span_hist.floor,
                buckets=len(report.span_hist.counts),
            )
        span_hist.merge(report.span_hist)
    telemetry = None
    if spec.telemetry:
        telemetry = TelemetrySnapshot()
        for report in ordered:
            if report.telemetry is not None:
                telemetry.merge(report.telemetry)
        if restarts:
            # Shard revivals are supervisor events, not world events:
            # they join the alert stream (operators should see them)
            # but stay out of the digest (recovery must be bitwise
            # invisible to the simulation result).
            for record in restarts:
                telemetry.alerts.append(
                    {
                        "rule": "shard_restart",
                        "host": f"shard:{record['shard']}",
                        "fired_at": record["horizon"],
                        "cleared_at": record["horizon"],
                        "values": {
                            "window": float(record["window"]),
                            "resumed_from": float(record["resumed_from"]),
                            "replayed": float(record["replayed"]),
                            "attempts": float(record["attempts"]),
                        },
                        "message": (
                            f"shard {record['shard']} {record['reason']} at "
                            f"window {record['window']}; resumed from "
                            f"checkpoint window {record['resumed_from']} and "
                            f"replayed {record['replayed']} grants"
                        ),
                    }
                )
            telemetry.alerts.sort(
                key=lambda alert: (alert["fired_at"], alert["host"])
            )
    return TopologyResult(
        spec=spec,
        shards=shards,
        stats=stats,
        total=total,
        ledger=ledger,
        telemetry=telemetry,
        reports={report.name: report.report for report in ordered},
        wire={report.name: report.wire for report in ordered},
        events_fired=sum(report.events_fired for report in ordered),
        now=max((report.now for report in ordered), default=0.0),
        windows=windows,
        wall_seconds=wall_seconds,
        restarts=list(restarts or []),
        segment_reports=ordered,
        sync=sync,
        shard_details=list(shard_details or []),
        span_hist=span_hist,
    )


def _recover_shard(
    handle: ProcessShard,
    grants: list,
    failure: Exception,
    recovery: RecoveryConfig,
    restarts: list,
    horizon: float | None,
    *,
    final: str = "step",
):
    """Revive ``handle`` and replay its journal, with bounded backoff.

    The first attempt is immediate (the common case: a clean crash with
    a live checkpoint child); subsequent attempts sleep
    ``backoff_base * 2**(attempt-1)`` capped at ``backoff_cap``.  The
    last failure is re-raised once the restart budget is spent.
    """
    reason = "timed out" if isinstance(failure, ShardTimeoutError) else "died"
    last_error = failure
    for attempt in range(1, recovery.max_restarts + 1):
        if attempt > 1:
            time.sleep(
                min(
                    recovery.backoff_base * 2 ** (attempt - 2),
                    recovery.backoff_cap,
                )
            )
        started = time.perf_counter()
        try:
            reply, info = handle.recover(grants, final=final)
        except (ShardDiedError, ShardTimeoutError) as error:
            last_error = error
            continue
        restarts.append(
            {
                "shard": handle.shard_id,
                "window": len(grants),
                "reason": reason,
                "attempts": attempt,
                "resumed_from": info["resumed_from"],
                "checkpointed": info["checkpointed"],
                "replayed": info["replayed"],
                "horizon": float(horizon) if horizon is not None else 0.0,
                "wall_seconds": time.perf_counter() - started,
            }
        )
        return reply
    raise last_error


def run_topology(
    spec: TopologySpec,
    *,
    shards: int = 1,
    until: float | None = None,
    max_windows: int = 1_000_000,
    mp_context=None,
    timeout: float | None = None,
    recovery: RecoveryConfig | None = None,
    hazards: dict[int, dict] | None = None,
    observability=None,
) -> TopologyResult:
    """Run ``spec`` to quiescence on ``shards`` processes.

    ``shards=1`` runs everything in-process — same windowed algorithm,
    same per-segment worlds, zero IPC — and is the bitwise oracle for
    any larger shard count.  ``until`` optionally stops once every
    pending event lies beyond that simulated time.  ``max_windows``
    bounds the synchronization rounds (a livelocked topology should
    fail loudly).

    ``timeout`` bounds each shard reply wait (typed
    :class:`~repro.sim.shard.ShardTimeoutError` instead of a hang).
    ``recovery`` arms the crash supervisor: grants are journaled,
    checkpoints taken every ``checkpoint_interval`` windows, and a dead
    or wedged shard is revived and replayed instead of aborting the
    run.  ``hazards`` maps shard index to a deterministic failure spec
    (see :class:`~repro.sim.shard.ProcessShard`) for recovery tests.

    ``observability`` takes an
    :class:`~repro.sim.obsplane.ObservabilityPlane`: worker shards then
    stream per-window progress deltas over dedicated sideband pipes
    (the ``shards=1`` fallback feeds the plane synchronously) and the
    plane's callbacks fire live.  The plane only *reads* quiescent
    state, so the result is bitwise identical armed or off — the
    observer-effect guard pins this.
    """
    spec.validate()
    if shards < 1:
        raise ValueError("shards must be at least 1")
    plane = observability
    started = time.perf_counter()
    groups = partition(len(spec.segments), shards)
    recv_timeout = timeout
    if recv_timeout is None and recovery is not None:
        recv_timeout = recovery.recv_timeout
    if len(groups) <= 1 or shards == 1:
        handles = [LocalShard(spec, list(range(len(spec.segments))))]
    else:
        handles = [
            ProcessShard(
                spec,
                group,
                context=mp_context,
                shard_id=index,
                timeout=recv_timeout,
                checkpoint_interval=(
                    recovery.checkpoint_interval if recovery else None
                ),
                hazard=(hazards or {}).get(index),
                sideband=plane is not None,
            )
            for index, group in enumerate(groups)
        ]
    supervised = recovery is not None and isinstance(handles[0], ProcessShard)
    journal: list[list] = [[] for _ in handles]
    restarts: list = []
    shard_groups = (
        [list(range(len(spec.segments)))] if len(handles) == 1 else groups
    )
    shard_of: dict[str, int] = {}
    for shard_index, group in enumerate(shard_groups):
        for segment_index in group:
            shard_of[spec.segments[segment_index].name] = shard_index
    sync = SyncProfile(
        shards=[
            ShardSyncStats(
                shard_id=index,
                segments=[spec.segments[i].name for i in group],
            )
            for index, group in enumerate(shard_groups)
        ]
    )
    # shards=1 has no worker process and no pipe: the plane is fed
    # synchronously from the same delta builder the workers use.
    local_source = None
    if plane is not None and isinstance(handles[0], LocalShard):
        local_source = SidebandSource(handles[0], 0)

    def _granted_recv(index: int, horizon: float | None):
        handle = handles[index]
        try:
            return handle.step_recv()
        except (ShardDiedError, ShardTimeoutError) as failure:
            if not supervised:
                raise
            if plane is not None:
                # The shard's sideband stream ended mid-run; the plane
                # keeps its last good view and must not wedge.
                plane.mark_lost(index)
            reply = _recover_shard(
                handle, journal[index], failure, recovery, restarts, horizon
            )
            if plane is not None:
                plane.mark_restarted(index)
            return reply

    def _drain_plane() -> None:
        if plane is None:
            return
        for handle in handles:
            if isinstance(handle, ProcessShard):
                for delta in handle.drain_sideband():
                    plane.ingest(delta)

    window = spec.window()
    windows = 0
    try:
        if window is None:
            # No bridges: segments are fully independent; one
            # quiescence grant each, no exchanges.
            window_started = time.perf_counter()
            for index, handle in enumerate(handles):
                journal[index].append((None, []))
                sync.shards[index].note_grant(0)
                handle.step_send(None, [])
            for index in range(len(handles)):
                waited = time.perf_counter()
                _, shard_egress, _ = _granted_recv(index, None)
                sync.shards[index].note_reply(
                    time.perf_counter() - waited, len(shard_egress)
                )
                if local_source is not None:
                    plane.ingest(local_source.delta(window=1, egress_backlog=0))
            sync.note_window(None, time.perf_counter() - window_started)
            _drain_plane()
            windows = 1
        else:
            pending: list = []
            window_index = 0
            horizon = 0.0   # priming grant: deliver nothing, report next_time
            while True:
                if windows >= max_windows:
                    raise RuntimeError(
                        f"exceeded {max_windows} synchronization windows "
                        f"(clock at {horizon}); topology may be livelocked"
                    )
                window_started = time.perf_counter()
                outbound: list[list] = [[] for _ in handles]
                for record in pending:
                    outbound[shard_of[record.dst_segment]].append(record)
                for index, (handle, frames) in enumerate(
                    zip(handles, outbound)
                ):
                    journal[index].append((horizon, frames))
                    # A grant with no frames is a pure null message —
                    # time permission only, the protocol's overhead.
                    sync.shards[index].note_grant(len(frames))
                    handle.step_send(horizon, frames)
                egress: list = []
                next_times: list[float] = []
                for index in range(len(handles)):
                    waited = time.perf_counter()
                    _, shard_egress, shard_next = _granted_recv(
                        index, horizon
                    )
                    sync.shards[index].note_reply(
                        time.perf_counter() - waited, len(shard_egress)
                    )
                    egress.extend(shard_egress)
                    if shard_next is not None:
                        next_times.append(shard_next)
                    if local_source is not None:
                        plane.ingest(
                            local_source.delta(
                                window=windows + 1,
                                egress_backlog=len(shard_egress),
                            )
                        )
                windows += 1
                sync.note_window(horizon, time.perf_counter() - window_started)
                _drain_plane()
                next_times.extend(record.deliver_at for record in egress)
                if not next_times:
                    break
                earliest = min(next_times)
                if until is not None and earliest > until:
                    break
                pending = egress
                # The smallest window-multiple strictly after
                # ``earliest``: floor(e/W)*W <= e < (floor(e/W)+1)*W,
                # and that upper bound is <= e + W, so frames captured
                # in the window (all at times >= earliest, with
                # delay >= W) still deliver at or after the horizon
                # that follows it.  Integer window indices keep the
                # horizon sequence free of accumulated float error.
                window_index = max(
                    window_index + 1, math.floor(earliest / window) + 1
                )
                horizon = window_index * window
        by_name: dict[str, SegmentReport] = {}
        for index, handle in enumerate(handles):
            try:
                reports = handle.collect()
            except (ShardDiedError, ShardTimeoutError) as failure:
                if not supervised:
                    raise
                if plane is not None:
                    plane.mark_lost(index)
                reports = _recover_shard(
                    handle,
                    journal[index],
                    failure,
                    recovery,
                    restarts,
                    None,
                    final="collect",
                )
                if plane is not None:
                    plane.mark_restarted(index)
            for report in reports:
                by_name[report.name] = report
        _drain_plane()
    finally:
        for handle in handles:
            handle.close()
    for index, handle in enumerate(handles):
        stats = sync.shards[index]
        if isinstance(handle, ProcessShard):
            stats.checkpoint_forks = handle.checkpoint_forks
            stats.checkpoint_fork_seconds = handle.checkpoint_fork_seconds
            stats.restarts = handle.restarts
    for record in restarts:
        sync.shards[record["shard"]].replay_seconds += record["wall_seconds"]
    shard_details = [
        {
            "shard": index,
            "segments": [spec.segments[i].name for i in group],
            "windows": (
                handles[index].last_ack
                if isinstance(handles[index], ProcessShard)
                else windows
            ),
            "events_fired": sum(
                by_name[spec.segments[i].name].events_fired for i in group
            ),
            "now": max(
                (by_name[spec.segments[i].name].now for i in group),
                default=0.0,
            ),
            "restarts": (
                handles[index].restarts
                if isinstance(handles[index], ProcessShard)
                else 0
            ),
        }
        for index, group in enumerate(shard_groups)
    ]
    return _merge_reports(
        spec,
        by_name,
        shards=len(handles),
        windows=windows,
        wall_seconds=time.perf_counter() - started,
        restarts=restarts,
        sync=sync,
        shard_details=shard_details,
    )
