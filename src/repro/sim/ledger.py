"""The charge ledger: attributed cost events and per-packet spans.

The paper's entire argument is an *accounting* argument — per-packet
cost decomposed into measured primitives (context switches, copies,
crossings, filter steps; §6.1/§6.5).  :class:`repro.sim.stats.KernelStats`
records only aggregate counters and an undifferentiated ``cpu_time``
sum; this module records *where* each microsecond went.

Two kinds of record:

* a :class:`ChargeEvent` — one attributed cost
  ``(primitive, component, host, sim_time, cost, quantity, packet_id,
  flow)``, emitted by :meth:`repro.sim.kernel.SimKernel.account` for
  every charge the kernel makes.  The sum of event costs for a host is
  exactly that host's ``stats.cpu_time``, and each ``KernelStats``
  counter is exactly the count (or quantity sum) of its primitive —
  :meth:`Ledger.stats_view` replays the events into a fresh
  ``KernelStats`` and the reconciliation test asserts equality.

* a :class:`PacketSpan` — the life of one received packet as a sequence
  of ``(stage, sim_time)`` marks: wire arrival → interrupt → filter
  eval → enqueue → wakeup → (scheduling wait) → dequeue → copy-out →
  syscall return.  Every span is eventually *closed* with an outcome —
  ``delivered``, or one of the drop/diversion outcomes — including on
  every drop path (interface overflow, queue overflow, resize, flush,
  port close, unclaimed, claimed by a kernel protocol).

The ledger is **off by default**: ``SimKernel.ledger`` is ``None`` and
the accounting fast path does no event construction at all.  Enable it
per-world with ``World(ledger=True)`` or ``world.enable_ledger()``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from .stats import KernelStats

__all__ = [
    "Primitive",
    "ChargeEvent",
    "PacketSpan",
    "Ledger",
    "apply_counters",
    "SPAN_STAGES",
    "SPAN_OUTCOMES",
    "STAGE_WIRE_ARRIVAL",
    "STAGE_INTERRUPT",
    "STAGE_FILTER_EVAL",
    "STAGE_ENQUEUE",
    "STAGE_WAKEUP",
    "STAGE_DEQUEUE",
    "STAGE_COPY_OUT",
    "STAGE_SYSCALL_RETURN",
]


class Primitive(enum.Enum):
    """What one charge event paid for.

    Each value corresponds either to a :class:`~repro.sim.costs.CostModel`
    primitive (those carry a cost) or to a pure counting event (cost 0 —
    drop accounting, wire fates).  The mapping from primitive to
    ``KernelStats`` counter lives in :func:`apply_counters` and is the
    single source of truth for both live accounting and ledger replay.
    """

    # -- process/kernel boundary ---------------------------------------
    CONTEXT_SWITCH = "context_switch"
    SYSCALL = "syscall"
    WAKEUP = "wakeup"
    COPY = "copy"
    COMPUTE = "compute"          #: user-mode CPU (the Compute syscall)
    DISPLAY = "display"          #: bitmap-display rendering CPU
    SIGNAL = "signal"
    # -- interrupt-level receive ---------------------------------------
    INTERRUPT = "interrupt"
    BUFFER = "buffer"            #: mbuf shuffling, per frame
    FRAME_RX = "frame_rx"
    UNCLAIMED = "unclaimed"
    # -- packet filter --------------------------------------------------
    PF_FIXED = "pf_fixed"
    FILTER_PREDICATE = "filter_predicate"
    FILTER_INSTRUCTION = "filter_instruction"
    MICROTIME = "microtime"
    PF_SEND_FIXED = "pf_send_fixed"
    FILTER_BIND = "filter_bind"
    # -- kernel-resident protocols --------------------------------------
    IP_INPUT = "ip_input"
    TRANSPORT_INPUT = "transport_input"
    TRANSPORT_OUTPUT = "transport_output"
    CHECKSUM = "checksum"
    UDP_SEND_OVERHEAD = "udp_send_overhead"
    # -- device driver ---------------------------------------------------
    DRIVER_SEND = "driver_send"
    # -- drop accounting (cost-free counting events) ---------------------
    DROP_INTERFACE = "drop_interface"    #: NIC input queue overflow (legacy)
    DROP_RING = "dropped_ring"           #: input ring full at admission
    DROP_NOBUF = "dropped_nobuf"         #: kernel buffer pool/share exhausted
    DROP_SHED = "dropped_shed"           #: early drop by the overload policy
    DROP_OVERFLOW = "drop_overflow"      #: port queue overflow
    DROP_RESIZE = "drop_resize"          #: SETQUEUELEN shrink discard
    DROP_FLUSH = "drop_flush"            #: FLUSH ioctl discard
    DROP_CORRUPT = "drop_corrupt"        #: checksum-rejected by a protocol
    DROP_LINK_DOWN = "dropped_link_down"  #: bridge link down at capture/delivery
    # -- wire fates (host="wire"; chaos/loss injection on the segment) ---
    WIRE_LOSS = "wire_loss"
    WIRE_CORRUPT = "wire_corrupt"
    WIRE_REORDER = "wire_reorder"
    WIRE_DUPLICATE = "wire_duplicate"


#: Primitives counted by :meth:`Ledger.drop_summary` — every stage at
#: which a packet (or frame) can be lost, wire to user space.
DROP_PRIMITIVES = (
    Primitive.WIRE_LOSS,
    Primitive.WIRE_CORRUPT,
    Primitive.DROP_INTERFACE,
    Primitive.DROP_RING,
    Primitive.DROP_NOBUF,
    Primitive.DROP_SHED,
    Primitive.DROP_OVERFLOW,
    Primitive.DROP_RESIZE,
    Primitive.DROP_FLUSH,
    Primitive.DROP_CORRUPT,
    Primitive.DROP_LINK_DOWN,
)

_SIMPLE_COUNTERS = {
    Primitive.CONTEXT_SWITCH: "context_switches",
    Primitive.WAKEUP: "wakeups",
    Primitive.INTERRUPT: "interrupts",
    Primitive.FRAME_RX: "frames_received",
    Primitive.DRIVER_SEND: "frames_sent",
    Primitive.SIGNAL: "signals_posted",
    Primitive.UNCLAIMED: "packets_unclaimed",
}


def apply_counters(stats: KernelStats, primitive: Primitive, quantity: int = 1) -> None:
    """Bump the ``KernelStats`` counters ``primitive`` stands for.

    Used by both the live accounting path
    (:meth:`repro.sim.kernel.SimKernel.account`) and the replay path
    (:meth:`Ledger.stats_view`), so the two can never disagree about
    which counter a primitive feeds.
    """
    if primitive is Primitive.SYSCALL:
        stats.syscalls += 1
        stats.domain_crossings += 2
    elif primitive is Primitive.COPY:
        stats.copies += 1
        stats.bytes_copied += quantity
    elif primitive is Primitive.FILTER_PREDICATE:
        stats.filter_predicates += quantity
    elif primitive is Primitive.FILTER_INSTRUCTION:
        stats.filter_instructions += quantity
    else:
        name = _SIMPLE_COUNTERS.get(primitive)
        if name is not None:
            setattr(stats, name, getattr(stats, name) + 1)


@dataclass(frozen=True, slots=True)
class ChargeEvent:
    """One attributed cost: who charged what, when, and for which packet."""

    primitive: Primitive
    component: str       #: "nic", "pf", "sched", "udp", ... — the layer
    host: str            #: kernel name ("wire" for segment-level fates)
    sim_time: float
    cost: float          #: simulated CPU seconds (0 for counting events)
    quantity: int        #: bytes for COPY/BUFFER, steps for FILTER_*, else 1
    packet_id: int | None
    flow: Any            #: optional flow key (ethertype, port id, ...)


# -- span stages, in pipeline order ------------------------------------------

STAGE_WIRE_ARRIVAL = "wire_arrival"
STAGE_INTERRUPT = "interrupt"
STAGE_FILTER_EVAL = "filter_eval"
STAGE_ENQUEUE = "enqueue"
STAGE_WAKEUP = "wakeup"
STAGE_DEQUEUE = "dequeue"        #: scheduling wait = dequeue − wakeup
STAGE_COPY_OUT = "copy_out"
STAGE_SYSCALL_RETURN = "syscall_return"

SPAN_STAGES = (
    STAGE_WIRE_ARRIVAL,
    STAGE_INTERRUPT,
    STAGE_FILTER_EVAL,
    STAGE_ENQUEUE,
    STAGE_WAKEUP,
    STAGE_DEQUEUE,
    STAGE_COPY_OUT,
    STAGE_SYSCALL_RETURN,
)
_STAGE_RANK = {name: rank for rank, name in enumerate(SPAN_STAGES)}

SPAN_OUTCOMES = frozenset(
    {
        "delivered",          #: read by a user process
        "kernel_protocol",    #: claimed by a kernel-resident protocol
        "unclaimed",          #: no protocol or filter wanted it
        "dropped_interface",  #: NIC input queue overflow (legacy path)
        "dropped_ring",       #: input ring full at admission
        "dropped_nobuf",      #: kernel buffer pool/share exhausted
        "dropped_shed",       #: shed early by the overload policy
        "dropped_overflow",   #: every accepting port's queue was full
        "dropped_resize",     #: discarded by a SETQUEUELEN shrink
        "flushed",            #: discarded by a FLUSH ioctl
        "closed_port",        #: still queued when the port closed
    }
)


@dataclass(slots=True)
class PacketSpan:
    """One received packet's path through the receive pipeline."""

    packet_id: int
    host: str
    flow: Any = None
    stages: list = field(default_factory=list)  #: [(stage, sim_time), ...]
    outcome: str | None = None
    closed_at: float | None = None

    @property
    def closed(self) -> bool:
        return self.outcome is not None

    def stage_time(self, stage: str) -> float | None:
        """First time ``stage`` was recorded (None if it never was)."""
        for name, when in self.stages:
            if name == stage:
                return when
        return None

    def latency(self, start: str, end: str) -> float | None:
        """Elapsed simulated time between two stages (None if either is
        missing — e.g. asking a dropped packet for its copy-out)."""
        t0 = self.stage_time(start)
        t1 = self.stage_time(end)
        if t0 is None or t1 is None:
            return None
        return t1 - t0

    def problems(self) -> list[str]:
        """Well-formedness violations (empty list = a healthy span).

        Checks the properties the hypothesis suite asserts: stages are
        known, their times never run backwards, their order follows the
        pipeline, and a closed span's close time is not before its last
        stage.
        """
        issues: list[str] = []
        last_rank = -1
        last_time = -math.inf
        for name, when in self.stages:
            rank = _STAGE_RANK.get(name)
            if rank is None:
                issues.append(f"unknown stage {name!r}")
                continue
            if rank < last_rank:
                issues.append(
                    f"stage {name!r} out of pipeline order"
                )
            if when < last_time:
                issues.append(f"stage {name!r} time runs backwards")
            last_rank = max(last_rank, rank)
            last_time = max(last_time, when)
        if self.outcome is not None:
            if self.outcome not in SPAN_OUTCOMES:
                issues.append(f"unknown outcome {self.outcome!r}")
            if self.closed_at is not None and self.closed_at < last_time:
                issues.append("closed before its last stage")
        return issues


class Ledger:
    """Append-only store of charge events and packet spans.

    One ledger is shared by every host in a world (events carry the
    host name), so cross-host workloads aggregate naturally and packet
    ids are globally unique.
    """

    def __init__(self) -> None:
        self.events: list[ChargeEvent] = []
        self.spans: dict[int, PacketSpan] = {}
        self._next_packet_id = 1

    # -- merging --------------------------------------------------------

    def hosts(self) -> set[str]:
        """Every host label this ledger has recorded for (events and
        spans; includes the segment-level ``wire*`` labels)."""
        names = {event.host for event in self.events}
        names.update(span.host for span in self.spans.values())
        return names

    def merge(self, other: "Ledger") -> "Ledger":
        """Fold a disjoint world's ledger into this one (in place).

        The sharded orchestrator reassembles a whole-world ledger from
        per-segment ones.  Hosts must be disjoint — the same host
        recorded in two ledgers means the same kernel was accounted
        twice, so that raises.  ``other``'s packet ids are remapped by a
        fixed offset (this ledger's id high-water mark) on both events
        and spans; merging shard results in a deterministic order
        therefore yields identical ids regardless of how segments were
        partitioned into processes.  Returns ``self``.
        """
        overlap = self.hosts() & other.hosts()
        if overlap:
            raise ValueError(
                f"cannot merge ledgers that share hosts: {sorted(overlap)}"
            )
        offset = self._next_packet_id - 1
        collisions = sorted(
            packet_id + offset
            for packet_id in other.spans
            if packet_id + offset in self.spans
        )
        if collisions:
            raise ValueError(
                "packet-id remap collision: remapped ids "
                f"{collisions[:5]} already exist (a ledger holds span ids "
                "at or above its own allocation high-water mark)"
            )
        for event in other.events:
            packet_id = event.packet_id
            if packet_id is not None:
                packet_id += offset
            self.events.append(
                ChargeEvent(
                    event.primitive,
                    event.component,
                    event.host,
                    event.sim_time,
                    event.cost,
                    event.quantity,
                    packet_id,
                    event.flow,
                )
            )
        for packet_id, span in other.spans.items():
            self.spans[packet_id + offset] = PacketSpan(
                span.packet_id + offset,
                span.host,
                span.flow,
                list(span.stages),
                span.outcome,
                span.closed_at,
            )
        self._next_packet_id += other._next_packet_id - 1
        return self

    # -- recording ------------------------------------------------------

    def mark(self) -> int:
        """Current event count — pass as ``start=`` to scope aggregation
        to 'everything after this point' (benchmark baselines)."""
        return len(self.events)

    def record(
        self,
        primitive: Primitive,
        *,
        host: str,
        at: float,
        cost: float = 0.0,
        quantity: int = 1,
        component: str = "kernel",
        packet_id: int | None = None,
        flow: Any = None,
    ) -> None:
        self.events.append(
            ChargeEvent(
                primitive, component, host, at, cost, quantity, packet_id, flow
            )
        )

    def begin_packet(
        self,
        host: str,
        *,
        at: float,
        flow: Any = None,
        stage: str | None = STAGE_WIRE_ARRIVAL,
    ) -> int:
        """Open a span for a newly arrived packet; returns its id."""
        packet_id = self._next_packet_id
        self._next_packet_id += 1
        span = PacketSpan(packet_id, host, flow)
        if stage is not None:
            span.stages.append((stage, at))
        self.spans[packet_id] = span
        return packet_id

    def stage(self, packet_id: int, stage: str, at: float) -> None:
        """Mark a pipeline stage on an open span (no-op once closed or
        for unknown ids, so callers need no existence checks)."""
        span = self.spans.get(packet_id)
        if span is None or span.outcome is not None:
            return
        span.stages.append((stage, at))

    def close_packet(self, packet_id: int, outcome: str, at: float) -> None:
        """Resolve a span; later closes of the same id are ignored (a
        copy-all packet delivered to two ports closes at the first)."""
        span = self.spans.get(packet_id)
        if span is None or span.outcome is not None:
            return
        span.outcome = outcome
        span.closed_at = at

    # -- event aggregation ----------------------------------------------

    def iter_events(
        self,
        host: str | None = None,
        *,
        start: int = 0,
        since: float | None = None,
    ) -> Iterator[ChargeEvent]:
        for event in self.events[start:]:
            if host is not None and event.host != host:
                continue
            if since is not None and event.sim_time < since:
                continue
            yield event

    def total_cost(
        self,
        host: str | None = None,
        *,
        start: int = 0,
        since: float | None = None,
        primitives: Iterable[Primitive] | None = None,
    ) -> float:
        """Sum of event costs, optionally scoped by host / window / set."""
        wanted = None if primitives is None else frozenset(primitives)
        total = 0.0
        for event in self.iter_events(host, start=start, since=since):
            if wanted is None or event.primitive in wanted:
                total += event.cost
        return total

    def breakdown(
        self, host: str | None = None, *, start: int = 0
    ) -> dict[str, dict[str, float]]:
        """Per-primitive totals: ``{name: {events, quantity, cost}}``."""
        out: dict[str, dict[str, float]] = {}
        for event in self.iter_events(host, start=start):
            row = out.setdefault(
                event.primitive.value, {"events": 0, "quantity": 0, "cost": 0.0}
            )
            row["events"] += 1
            row["quantity"] += event.quantity
            row["cost"] += event.cost
        return out

    def stats_view(self, host: str) -> KernelStats:
        """Replay ``host``'s events into a fresh :class:`KernelStats`.

        Because the live path adds the identical costs in the identical
        order through :meth:`SimKernel.account`, the result equals the
        kernel's live ``stats`` exactly (bitwise, floats included) —
        the reconciliation invariant.
        """
        stats = KernelStats()
        for event in self.events:
            if event.host != host:
                continue
            stats.cpu_time += event.cost
            apply_counters(stats, event.primitive, event.quantity)
        return stats

    def drop_summary(
        self, host: str | None = None, *, start: int = 0
    ) -> dict[str, int]:
        """Packets lost per stage, wire to user space.

        Keys are :data:`DROP_PRIMITIVES` value names.  Wire-level fates
        (``wire_loss``, ``wire_corrupt``) are always included even when
        scoping to a host — they happened *to* that host's traffic, on
        the segment.  Multi-segment worlds label their wire events per
        segment (``wire:<segment>``); every ``wire*`` label counts.
        """
        summary: dict[str, int] = {}
        for event in self.events[start:]:
            if event.primitive not in DROP_PRIMITIVES:
                continue
            if (
                host is not None
                and event.host != host
                and not event.host.startswith("wire")
            ):
                continue
            key = event.primitive.value
            summary[key] = summary.get(key, 0) + 1
        return summary

    # -- span aggregation -------------------------------------------------

    def spans_for(self, host: str | None = None) -> list[PacketSpan]:
        if host is None:
            return list(self.spans.values())
        return [span for span in self.spans.values() if span.host == host]

    def open_spans(self, host: str | None = None) -> list[PacketSpan]:
        return [span for span in self.spans_for(host) if not span.closed]

    def stage_latencies(
        self, start_stage: str, end_stage: str, *, host: str | None = None
    ) -> list[float]:
        """Per-packet elapsed time between two stages, for every span
        that reached both."""
        out = []
        for span in self.spans_for(host):
            latency = span.latency(start_stage, end_stage)
            if latency is not None:
                out.append(latency)
        return out

    def stage_percentiles(
        self,
        start_stage: str = STAGE_WIRE_ARRIVAL,
        end_stage: str = STAGE_SYSCALL_RETURN,
        *,
        host: str | None = None,
        percentiles: tuple[float, ...] = (0.5, 0.9, 0.99),
    ) -> dict[float, float]:
        """Nearest-rank latency percentiles between two stages (empty
        dict when no span reached both — e.g. a pure-drop run)."""
        data = sorted(self.stage_latencies(start_stage, end_stage, host=host))
        if not data:
            return {}
        n = len(data)
        return {
            p: data[min(n - 1, max(0, math.ceil(p * n) - 1))]
            for p in percentiles
        }
