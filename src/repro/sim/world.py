"""A world: the clock, one Ethernet segment, and the hosts on it.

Every test, example and benchmark builds one of these.  A world is
completely deterministic: same construction, same outcome, always.
"""

from __future__ import annotations

import random

from ..net.ethernet import ETHERNET_10MB, LinkSpec
from .clock import EventScheduler
from .costs import MICROVAX_II, CostModel
from .host import Host
from .ledger import Ledger
from .process import Process
from .seeds import derive_seed
from .telemetry import Telemetry

__all__ = ["World"]


class World:
    """The whole simulation: scheduler + segment + hosts."""

    def __init__(
        self,
        link: LinkSpec = ETHERNET_10MB,
        costs: CostModel = MICROVAX_II,
        *,
        loss_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        seed: int = 0,
        chaos=None,
        ledger: bool = False,
        telemetry: bool = False,
    ) -> None:
        from ..net.medium import EthernetSegment

        self.link = link
        self.costs = costs
        #: root of the world's seed namespace; see :meth:`seed_for`.
        self.seed = seed
        self.scheduler = EventScheduler()
        self.segment = EthernetSegment(
            self.scheduler,
            link,
            loss_rate=loss_rate,
            duplicate_rate=duplicate_rate,
            seed=seed,
        )
        if chaos is not None:
            # A repro.net.ChaosConfig: burst loss, reordering jitter,
            # corruption, duplication — applied to every direction.
            self.segment.set_chaos(chaos)
        self.hosts: list[Host] = []
        #: one shared charge ledger for the whole world (None = off, the
        #: zero-overhead default); see :mod:`repro.sim.ledger`.
        self.ledger: Ledger | None = None
        if ledger:
            self.enable_ledger()
        #: one telemetry sampler for the whole world (None = off, the
        #: zero-overhead default); see :mod:`repro.sim.telemetry`.
        self.telemetry: Telemetry | None = None
        if telemetry:
            self.enable_telemetry()

    def enable_ledger(self) -> Ledger:
        """Attach a charge ledger to the segment and every host (current
        and future); idempotent, returns the ledger."""
        if self.ledger is None:
            self.ledger = Ledger()
            self.segment.ledger = self.ledger
            for host in self.hosts:
                host.kernel.ledger = self.ledger
        return self.ledger

    def enable_telemetry(
        self,
        *,
        interval: float | None = None,
        capacity: int | None = None,
        watchdogs: bool = True,
    ) -> Telemetry:
        """Arm the live-telemetry sampler on every host (current and
        future); idempotent, returns the :class:`Telemetry`.

        ``interval`` is the sim-time tick spacing, ``capacity`` the
        per-series ring size, ``watchdogs`` installs the built-in
        detector set (receive livelock, pool exhaustion, poll-mode
        residency, RTO backoff storms) on each host.
        """
        if self.telemetry is None:
            kwargs: dict = {"watchdogs": watchdogs}
            if interval is not None:
                kwargs["interval"] = interval
            if capacity is not None:
                kwargs["capacity"] = capacity
            self.telemetry = Telemetry(self.scheduler, **kwargs)
            for host in self.hosts:
                self.telemetry.attach_host(host.kernel)
            self.telemetry.arm()
        return self.telemetry

    @property
    def now(self) -> float:
        return self.scheduler.now

    # -- derived randomness ------------------------------------------------

    def seed_for(self, *path: "str | int | bytes") -> int:
        """A child seed under this world's root, named by ``path``.

        Derivation (:func:`repro.sim.seeds.derive_seed`) is a pure
        function of ``(seed, *path)`` — independent of host count,
        creation order, process boundaries and ``PYTHONHASHSEED`` — so
        a sharded topology and a single-process run hand every consumer
        the identical stream.
        """
        return derive_seed(self.seed, *path)

    def rng(self, *path: "str | int | bytes") -> random.Random:
        """A ``random.Random`` seeded by :meth:`seed_for`."""
        return random.Random(self.seed_for(*path))

    def host(
        self,
        name: str,
        address: bytes | None = None,
        *,
        promiscuous: bool = False,
        costs: CostModel | None = None,
        input_queue_limit: int = 16,
    ) -> Host:
        """Add a host; addresses default to 1, 2, 3... station numbers."""
        if address is None:
            station = len(self.hosts) + 1
            address = station.to_bytes(self.link.address_length, "big")
        host = Host(
            name,
            address,
            self.link,
            self.scheduler,
            costs or self.costs,
            promiscuous=promiscuous,
            input_queue_limit=input_queue_limit,
        )
        self.segment.attach(host.nic)
        if self.ledger is not None:
            host.kernel.ledger = self.ledger
        if self.telemetry is not None:
            self.telemetry.attach_host(host.kernel)
        self.hosts.append(host)
        return host

    # -- running ----------------------------------------------------------

    def run(self, until: float | None = None, max_events: int = 5_000_000) -> float:
        """Fire events until quiescent (or ``until``); returns the time."""
        return self.scheduler.run(until=until, max_events=max_events)

    def run_until_done(
        self,
        *processes: Process,
        max_events: int = 5_000_000,
    ) -> float:
        """Run until every given process finishes.

        Raises RuntimeError if the simulation goes quiescent (deadlock)
        or exceeds ``max_events`` first — a deadlocked protocol test
        should fail loudly, not hang.
        """
        fired = 0
        while not all(process.done for process in processes):
            if fired >= max_events:
                raise RuntimeError(
                    f"exceeded {max_events} events; "
                    f"stuck: {[p for p in processes if not p.done]}"
                )
            if not self.scheduler.step():
                stuck = [p.name for p in processes if not p.done]
                failed = [
                    f"{p.name}: {p.error!r}"
                    for host in self.hosts
                    for p in host.kernel.processes.values()
                    if p.error is not None
                ]
                detail = f"; failed elsewhere: {failed}" if failed else ""
                raise RuntimeError(
                    f"simulation went idle with processes blocked: "
                    f"{stuck}{detail}"
                )
            fired += 1
        self._raise_watched_failures(processes)
        return self.scheduler.now

    @staticmethod
    def _raise_watched_failures(processes: tuple[Process, ...]) -> None:
        for process in processes:
            if process.error is not None:
                raise RuntimeError(
                    f"process {process.name} failed: {process.error!r}"
                ) from process.error
