"""The cross-shard observability plane: live views of a sharded run.

Since the system of record became a multi-process topology
(:mod:`repro.sim.orchestrator`), its workers have been invisible until
they exit: the grant pipes carry only the synchronization protocol, and
every ledger/telemetry byte arrives post-merge.  This module is the
paper's "substantial analysis in real time" stance applied to the
*cluster*, the way :mod:`repro.sim.telemetry` applied it to one world:

* :class:`SidebandSource` builds **bounded, monotonic progress deltas**
  from a live shard — window index, earliest pending sim-time,
  cumulative events, egress backlog, checkpoint age, newly fired
  watchdog alerts, and a mergeable :class:`~repro.sim.telemetry.LogHistogram`
  of span latencies.  Worker processes flush one delta per window over
  a dedicated *sideband* pipe (never the grant channel), best-effort:
  a dead aggregator silently disables the stream, a dead worker only
  ends it.
* :class:`ObservabilityPlane` folds deltas into a live cluster view —
  per-shard :class:`ShardView` records plus skew/backlog aggregates —
  and exposes a callback API (``on_update``, ``on_alert``) that the
  ``python -m repro top`` dashboard renders from.  Alert records are
  deduplicated by ``(rule, host, fired_at)``, so checkpoint-replay
  after a crash re-announces nothing.
* :class:`SyncProfile` / :class:`ShardSyncStats` instrument the
  conservative sync protocol itself, supervisor-side: grant-wait
  stalls, window-advance wall latency, null-message (pure time grant)
  counts, cross-shard egress depth, and checkpoint fork/replay time —
  the numbers that attribute the scaling bench's 1-core inversion.

Everything here *reads* quiescent state at window boundaries and
records wall-clock on the supervisor; nothing schedules events, draws
random numbers, or reorders merges.  That is why a run's digest is
bitwise identical with the plane armed or off — the PR 5 free-when-off
contract, enforced by the observer-effect guard in
``tests/difftest/test_observer_effect.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from .ledger import STAGE_SYSCALL_RETURN, STAGE_WIRE_ARRIVAL
from .telemetry import LogHistogram

__all__ = [
    "span_latency_histogram",
    "SidebandSource",
    "ShardView",
    "ObservabilityPlane",
    "ShardSyncStats",
    "SyncProfile",
    "TRACK_LIMIT",
]

TRACK_LIMIT = 4096
"""Per-window samples kept by :class:`SyncProfile` (horizons, wall
times, egress depths).  Aggregates keep accumulating past the cap, so
profiles stay *bounded* even at the orchestrator's million-window
ceiling; only the per-window detail truncates."""


def span_latency_histogram(
    ledger,
    start: str = STAGE_WIRE_ARRIVAL,
    end: str = STAGE_SYSCALL_RETURN,
    *,
    floor: float = 1e-7,
    buckets: int = 64,
) -> LogHistogram:
    """Histogram the per-packet latency between two pipeline stages.

    The mergeable counterpart of
    :meth:`~repro.sim.ledger.Ledger.stage_percentiles`: per-segment
    histograms built by this function and then merged are identical to
    one histogram built over the merged ledger, because octave buckets
    make the fold order-free.
    """
    hist = LogHistogram(floor=floor, buckets=buckets)
    for span in ledger.spans.values():
        latency = span.latency(start, end)
        if latency is not None:
            hist.add(latency)
    return hist


# ---------------------------------------------------------------------------
# the shard side: building deltas
# ---------------------------------------------------------------------------


class SidebandSource:
    """Builds one shard's progress deltas from its live segments.

    Wraps a :class:`~repro.sim.shard.LocalShard` (in the worker process
    for sharded runs, in the orchestrator itself for ``shards=1``) and
    tracks flush cursors so every delta is an incremental read:

    * alerts are flushed once, by per-segment count cursor;
    * span latencies fold into a cumulative :class:`LogHistogram` as
      spans close, keyed ``(segment, packet_id)`` so nothing is counted
      twice;
    * everything else (window, events, clocks) is a cumulative snapshot
      — deltas are *monotonic*, so a delta that arrives late or twice
      (checkpoint replay) simply overwrites the view with the truth.

    The source only reads scheduler clocks, telemetry alert lists and
    closed ledger spans — state that is quiescent at a window boundary —
    so building a delta cannot perturb the simulation.
    """

    def __init__(self, shard, shard_id: int = 0) -> None:
        self.shard = shard
        self.shard_id = shard_id
        self.span_hist = LogHistogram()
        self.checkpoint_window = 0
        self.checkpoint_forks = 0
        self.checkpoint_fork_seconds = 0.0
        self._alert_cursor: dict[str, int] = {}
        self._folded: set[tuple[str, int]] = set()

    def note_checkpoint(self, window: int, fork_seconds: float) -> None:
        """Record a fork-based checkpoint the shard just took."""
        self.checkpoint_window = window
        self.checkpoint_forks += 1
        self.checkpoint_fork_seconds += fork_seconds

    def delta(self, *, window: int, egress_backlog: int) -> dict:
        """One bounded, monotonic progress delta (a plain dict, so it
        crosses the sideband pipe under any start method)."""
        events = 0
        next_times: list[float] = []
        segments: dict[str, dict] = {}
        alerts: list[dict] = []
        for name, runtime in self.shard.runtimes.items():
            world = runtime.world
            fired = world.scheduler.events_fired
            events += fired
            pending = runtime.next_time()
            if pending is not None:
                next_times.append(pending)
            segments[name] = {"now": world.scheduler.now, "events": fired}
            telemetry = world.telemetry
            if telemetry is not None:
                seen = self._alert_cursor.get(name, 0)
                for alert in telemetry.alerts[seen:]:
                    alerts.append(alert.to_dict())
                self._alert_cursor[name] = len(telemetry.alerts)
            ledger = world.ledger
            if ledger is not None:
                for packet_id, span in ledger.spans.items():
                    if span.closed_at is None:
                        continue
                    key = (name, packet_id)
                    if key in self._folded:
                        continue
                    self._folded.add(key)
                    latency = span.latency(
                        STAGE_WIRE_ARRIVAL, STAGE_SYSCALL_RETURN
                    )
                    if latency is not None:
                        self.span_hist.add(latency)
        return {
            "shard": self.shard_id,
            "window": window,
            "next_time": min(next_times) if next_times else None,
            "events_fired": events,
            "egress_backlog": egress_backlog,
            "checkpoint_window": self.checkpoint_window,
            "checkpoint_forks": self.checkpoint_forks,
            "checkpoint_fork_seconds": self.checkpoint_fork_seconds,
            "alerts": alerts,
            "segments": segments,
            "span_hist": (
                self.span_hist.to_dict() if self.span_hist.count else None
            ),
        }


# ---------------------------------------------------------------------------
# the supervisor side: the aggregator
# ---------------------------------------------------------------------------


@dataclass
class ShardView:
    """The plane's latest knowledge of one shard."""

    shard_id: int
    window: int = 0
    next_time: float | None = None
    events_fired: int = 0
    egress_backlog: int = 0
    checkpoint_window: int = 0
    checkpoint_forks: int = 0
    checkpoint_fork_seconds: float = 0.0
    segments: dict = field(default_factory=dict)
    span_hist: LogHistogram | None = None
    deltas: int = 0
    restarts: int = 0
    lost: bool = False
    updated_wall: float = 0.0

    @property
    def checkpoint_age(self) -> int:
        """Windows since this shard's last checkpoint — the replay
        bill if it died right now."""
        return self.window - self.checkpoint_window

    @property
    def earliest(self) -> float:
        """Earliest pending sim-time (``inf`` when quiescent, so skew
        math over live shards stays simple)."""
        return self.next_time if self.next_time is not None else float("inf")


class ObservabilityPlane:
    """Folds sideband deltas into a live cluster view.

    Pass an instance to :func:`repro.sim.orchestrator.run_topology` via
    ``observability=`` to arm it.  ``on_update(plane)`` fires after
    every ingested delta; ``on_alert(alert_dict)`` fires once per
    distinct watchdog alert, as soon as any shard streams it — the live
    counterpart of reading the merged alert log post-run.

    The plane is loss-tolerant by construction: deltas are cumulative,
    so dropped ones cost staleness, not correctness; a shard that dies
    mid-stream is flagged ``lost`` (and ``restarted`` again once the
    supervisor revives it) without wedging ingestion for the others.
    """

    def __init__(
        self,
        *,
        on_update: Callable[["ObservabilityPlane"], None] | None = None,
        on_alert: Callable[[dict], None] | None = None,
    ) -> None:
        self.shards: dict[int, ShardView] = {}
        self.alerts: list[dict] = []
        self.deltas = 0
        self.on_update = on_update
        self.on_alert = on_alert
        self._alert_keys: set[tuple] = set()

    # -- ingestion -------------------------------------------------------

    def view(self, shard_id: int) -> ShardView:
        if shard_id not in self.shards:
            self.shards[shard_id] = ShardView(shard_id)
        return self.shards[shard_id]

    def ingest(self, delta: dict) -> None:
        """Fold one sideband delta in and fire callbacks."""
        view = self.view(delta["shard"])
        view.window = delta["window"]
        view.next_time = delta["next_time"]
        view.events_fired = delta["events_fired"]
        view.egress_backlog = delta["egress_backlog"]
        view.checkpoint_window = delta["checkpoint_window"]
        view.checkpoint_forks = delta["checkpoint_forks"]
        view.checkpoint_fork_seconds = delta["checkpoint_fork_seconds"]
        view.segments = dict(delta["segments"])
        if delta.get("span_hist"):
            view.span_hist = LogHistogram.from_dict(delta["span_hist"])
        view.deltas += 1
        view.lost = False
        view.updated_wall = time.monotonic()
        self.deltas += 1
        for alert in delta.get("alerts", ()):
            key = (alert["rule"], alert["host"], alert["fired_at"])
            if key in self._alert_keys:
                continue
            self._alert_keys.add(key)
            self.alerts.append(alert)
            if self.on_alert is not None:
                self.on_alert(alert)
        if self.on_update is not None:
            self.on_update(self)

    def mark_lost(self, shard_id: int) -> None:
        """The supervisor saw this shard die or wedge; its stream may
        have ended mid-delta.  The plane keeps the last good view."""
        self.view(shard_id).lost = True

    def mark_restarted(self, shard_id: int) -> None:
        view = self.view(shard_id)
        view.lost = False
        view.restarts += 1

    # -- aggregates ------------------------------------------------------

    def earliest_time(self) -> float | None:
        """Earliest pending sim-time across shards (None when all
        quiescent or nothing ingested yet)."""
        times = [
            view.earliest
            for view in self.shards.values()
            if view.earliest != float("inf")
        ]
        return min(times) if times else None

    def time_skew(self) -> float:
        """Sim-time spread between the fastest and slowest shard —
        the conservative protocol's idle bubble."""
        times = [
            view.earliest
            for view in self.shards.values()
            if view.earliest != float("inf")
        ]
        return max(times) - min(times) if len(times) > 1 else 0.0

    def window_skew(self) -> int:
        """Window-index spread (nonzero only transiently: the protocol
        is a barrier, so a persistent skew means a stalled shard)."""
        windows = [view.window for view in self.shards.values()]
        return max(windows) - min(windows) if len(windows) > 1 else 0

    def merged_span_hist(self) -> LogHistogram | None:
        """Cluster-wide span-latency histogram, merged across the
        latest per-shard histograms."""
        merged: LogHistogram | None = None
        for view in self.shards.values():
            if view.span_hist is None:
                continue
            if merged is None:
                merged = LogHistogram(
                    floor=view.span_hist.floor,
                    buckets=len(view.span_hist.counts),
                )
            merged.merge(view.span_hist)
        return merged

    def active_alerts(self) -> list[dict]:
        return [a for a in self.alerts if a.get("cleared_at") is None]

    # -- rendering -------------------------------------------------------

    def render(self) -> str:
        """One plain-text dashboard frame (the ``repro top`` view)."""
        lines = []
        earliest = self.earliest_time()
        head = f"cluster: {len(self.shards)} shard(s), {self.deltas} deltas"
        if earliest is not None:
            head += (
                f", sim {earliest * 1000.0:.1f} ms"
                f", skew {self.time_skew() * 1000.0:.2f} ms"
            )
        lines.append(head)
        lines.append(
            f"{'shard':>5} {'win':>5} {'sim ms':>9} {'events':>9} "
            f"{'egress':>7} {'ckpt age':>8} {'state':>9}"
        )
        slowest = max(
            (v.earliest for v in self.shards.values()), default=float("inf")
        )
        for shard_id in sorted(self.shards):
            view = self.shards[shard_id]
            sim_ms = (
                f"{view.earliest * 1000.0:9.1f}"
                if view.earliest != float("inf")
                else "     idle"
            )
            state = "LOST" if view.lost else (
                f"restart:{view.restarts}" if view.restarts else "ok"
            )
            lag = ""
            if (
                view.earliest != float("inf")
                and slowest != float("inf")
                and view.earliest == slowest
                and len(self.shards) > 1
            ):
                lag = " <- slowest"
            lines.append(
                f"{shard_id:>5} {view.window:>5} {sim_ms} "
                f"{view.events_fired:>9} {view.egress_backlog:>7} "
                f"{view.checkpoint_age:>8} {state:>9}{lag}"
            )
        hist = self.merged_span_hist()
        if hist is not None and hist.count:
            pct = hist.percentiles()
            lines.append(
                f"span latency: n={hist.count} "
                + " ".join(
                    f"{name}={value * 1000.0:.3f}ms"
                    for name, value in pct.items()
                    if value is not None
                )
            )
        active = self.active_alerts()
        for alert in self.alerts[-8:]:
            status = (
                "active"
                if alert.get("cleared_at") is None
                else f"cleared {alert['cleared_at'] * 1000.0:.1f} ms"
            )
            lines.append(
                f"ALERT [{alert['rule']}] {alert['host']} "
                f"fired {alert['fired_at'] * 1000.0:.1f} ms, {status}"
            )
        if not self.alerts:
            lines.append("alerts: none")
        elif not active:
            lines.append(f"alerts: {len(self.alerts)} total, none active")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# sync-protocol profiling (supervisor-side)
# ---------------------------------------------------------------------------


@dataclass
class ShardSyncStats:
    """Per-shard synchronization costs, measured by the supervisor.

    Wall-clock fields (``grant_wait_seconds``, fork/replay times) are
    honest machine time and therefore *outside* the run digest — like
    :attr:`~repro.sim.orchestrator.TopologyResult.wall_seconds` always
    was.  The event-shaped fields (null grants, egress counts) are
    sim-deterministic and reproduce bitwise across runs.
    """

    shard_id: int
    segments: list = field(default_factory=list)
    grants: int = 0
    null_grants: int = 0               #: grants that carried zero frames
    grant_wait_seconds: float = 0.0    #: wall time blocked on step replies
    grant_wait_hist: LogHistogram = field(default_factory=LogHistogram)
    egress_frames: int = 0             #: frames this shard handed back
    max_egress_depth: int = 0          #: largest single-window egress
    egress_per_window: list = field(default_factory=list)
    inbound_frames: int = 0            #: frames routed into this shard
    checkpoint_forks: int = 0
    checkpoint_fork_seconds: float = 0.0
    restarts: int = 0
    replay_seconds: float = 0.0        #: wall time spent in recovery replay

    def note_grant(self, frames: int) -> None:
        self.grants += 1
        if frames == 0:
            self.null_grants += 1
        self.inbound_frames += frames

    def note_reply(self, wait_seconds: float, egress: int) -> None:
        self.grant_wait_seconds += wait_seconds
        self.grant_wait_hist.add(wait_seconds)
        self.egress_frames += egress
        if egress > self.max_egress_depth:
            self.max_egress_depth = egress
        if len(self.egress_per_window) < TRACK_LIMIT:
            self.egress_per_window.append(egress)

    def as_dict(self) -> dict:
        return {
            "shard": self.shard_id,
            "segments": list(self.segments),
            "grants": self.grants,
            "null_grants": self.null_grants,
            "grant_wait_seconds": self.grant_wait_seconds,
            "grant_wait": self.grant_wait_hist.percentiles(),
            "egress_frames": self.egress_frames,
            "max_egress_depth": self.max_egress_depth,
            "inbound_frames": self.inbound_frames,
            "checkpoint_forks": self.checkpoint_forks,
            "checkpoint_fork_seconds": self.checkpoint_fork_seconds,
            "restarts": self.restarts,
            "replay_seconds": self.replay_seconds,
        }


@dataclass
class SyncProfile:
    """Whole-run synchronization profile: per-shard stats plus the
    window cadence (horizons are sim-deterministic; wall latencies are
    not, and the stitched trace uses only the deterministic subset)."""

    shards: list = field(default_factory=list)
    windows: int = 0
    horizons: list = field(default_factory=list)      #: sim-time grant horizons
    window_walls: list = field(default_factory=list)  #: wall secs per window
    window_wall_seconds: float = 0.0
    advance_hist: LogHistogram = field(default_factory=LogHistogram)

    def note_window(self, horizon: float | None, wall_seconds: float) -> None:
        self.windows += 1
        self.window_wall_seconds += wall_seconds
        self.advance_hist.add(wall_seconds)
        if len(self.horizons) < TRACK_LIMIT:
            self.horizons.append(horizon)
            self.window_walls.append(wall_seconds)

    @property
    def wall_per_window(self) -> float:
        """Mean wall seconds per synchronization window."""
        return self.window_wall_seconds / self.windows if self.windows else 0.0

    def as_dict(self) -> dict:
        return {
            "windows": self.windows,
            "wall_per_window": self.wall_per_window,
            "window_advance": self.advance_hist.percentiles(),
            "shards": [stats.as_dict() for stats in self.shards],
        }

    def render(self) -> str:
        """The ``repro profile --shards N`` table."""
        lines = [
            f"sync protocol: {self.windows} windows, "
            f"{self.wall_per_window * 1000.0:.3f} ms wall/window"
        ]
        advance = self.advance_hist.percentiles()
        if advance.get("p50") is not None:
            lines.append(
                "window advance: "
                + " ".join(
                    f"{name}={value * 1000.0:.3f}ms"
                    for name, value in advance.items()
                    if value is not None
                )
            )
        lines.append(
            f"{'shard':>5} {'segments':<18} {'grants':>7} {'null':>6} "
            f"{'wait ms':>9} {'wait p95':>9} {'egress':>7} {'depth':>6} "
            f"{'forks':>6} {'fork ms':>8} {'restarts':>8}"
        )
        for stats in self.shards:
            p95 = stats.grant_wait_hist.quantile(0.95)
            lines.append(
                f"{stats.shard_id:>5} "
                f"{','.join(stats.segments):<18} "
                f"{stats.grants:>7} {stats.null_grants:>6} "
                f"{stats.grant_wait_seconds * 1000.0:>9.2f} "
                f"{(p95 or 0.0) * 1000.0:>9.3f} "
                f"{stats.egress_frames:>7} {stats.max_egress_depth:>6} "
                f"{stats.checkpoint_forks:>6} "
                f"{stats.checkpoint_fork_seconds * 1000.0:>8.2f} "
                f"{stats.restarts:>8}"
            )
        return "\n".join(lines)
