"""Live telemetry: time-series sampling and health watchdogs.

The charge ledger (:mod:`repro.sim.ledger`) answers *where the CPU
went* after a run quiesces; it cannot tell you *when* a run went bad.
The receive-livelock work is exactly the regime where time-resolved
signals matter — queue depth, poll-mode occupancy and goodput **over
time**, not their totals.  This module is the paper's §5.4 "substantial
analysis in real time" stance applied to the simulator itself:

* a :class:`Telemetry` sampler — when armed on a world it schedules a
  fixed-interval sim-time tick and snapshots registered *gauges* into
  bounded ring-buffered :class:`Series`;
* a watchdog engine — declarative :class:`WatchdogRule` objects with
  hysteresis, evaluated on every tick, emitting structured
  :class:`Alert` records (fire/clear times and the triggering values);
* built-in detectors for the pathologies the overload and chaos work
  reproduces: receive livelock, buffer-pool exhaustion, sustained
  poll-mode residency, and RTO backoff storms.

Gauges reach the sampler through a *provider hook* on the kernel
(:meth:`repro.sim.kernel.SimKernel.publish_gauges`): the NIC, ports,
the buffer pool and the protocol RTO timers publish callables at
creation time without this module importing any of them.  When no
telemetry is armed the hook is one list append per *component* (never
per packet), so telemetry is off by default and free when off — the
same contract as the ledger.

Determinism: the tick runs on the shared
:class:`repro.sim.clock.EventScheduler`, so two runs of the same seeded
scenario produce bitwise-identical series and alert times.  The tick
keeps itself alive only while the world has other pending events;
once the simulation is otherwise quiescent the sampler parks itself so
``world.run()`` still terminates.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from .stats import KernelStats

__all__ = [
    "Series",
    "Sample",
    "Telemetry",
    "TelemetrySnapshot",
    "Alert",
    "WatchdogRule",
    "SeriesView",
    "LogHistogram",
    "builtin_watchdogs",
    "partition_watchdog",
    "DEFAULT_INTERVAL",
    "DEFAULT_CAPACITY",
]

DEFAULT_INTERVAL = 0.005
"""Seconds of simulated time between sampler ticks."""

DEFAULT_CAPACITY = 4096
"""Samples retained per series (a bounded ring; oldest evicted)."""


@dataclass(frozen=True, slots=True)
class Sample:
    """One gauge reading: (simulated time, value)."""

    time: float
    value: float


class Series:
    """A bounded ring buffer of :class:`Sample` for one gauge."""

    def __init__(
        self, host: str, name: str, *, unit: str = "", capacity: int = DEFAULT_CAPACITY
    ) -> None:
        self.host = host
        self.name = name
        self.unit = unit
        self._samples: deque[Sample] = deque(maxlen=capacity)

    def append(self, time: float, value: float) -> None:
        self._samples.append(Sample(time, value))

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self):
        return iter(self._samples)

    @property
    def samples(self) -> list[Sample]:
        return list(self._samples)

    def latest(self) -> float | None:
        """Most recent value (None before the first tick)."""
        if not self._samples:
            return None
        return self._samples[-1].value

    def rate(self, window: int = 2) -> float | None:
        """Per-second rate of change over the last ``window`` samples.

        For cumulative-counter gauges this is the windowed event rate.
        None when fewer than two samples exist (or time stood still).
        """
        if window < 2 or len(self._samples) < 2:
            return None
        window = min(window, len(self._samples))
        first = self._samples[-window]
        last = self._samples[-1]
        dt = last.time - first.time
        if dt <= 0.0:
            return None
        return (last.value - first.value) / dt

    def __repr__(self) -> str:
        tail = f", latest={self.latest():g}" if self._samples else ""
        return (
            f"Series({self.host}/{self.name}, {len(self._samples)} samples{tail})"
        )


class LogHistogram:
    """A fixed-bucket log2-scale histogram of positive values.

    Bucket ``i`` covers ``[floor * 2**i, floor * 2**(i+1))`` — octave
    buckets, so relative error is bounded by a factor of ``sqrt(2)`` at
    the geometric bucket midpoint no matter how wide the value range.
    The shape is fixed at construction, which buys the two properties
    the cross-shard observability plane needs:

    * **bounded**: the memory and wire footprint is ``buckets`` ints
      regardless of how many samples were folded in, so a shard can
      stream its histogram in every sideband delta;
    * **mergeable**: two histograms with the same shape merge by
      bucket-wise addition, and merging per-shard histograms is exactly
      equivalent to histogramming the merged samples — percentiles over
      an N-shard run need no raw-sample retention anywhere.

    ``quantile`` mirrors the nearest-rank convention of
    :meth:`repro.sim.ledger.Ledger.stage_percentiles`: it finds the
    bucket holding the k-th smallest sample and reports the bucket's
    geometric midpoint, clamped to the observed min/max so tiny
    populations stay exact.

    Values below ``floor`` land in bucket 0, values off the top end in
    the last bucket; both stay inside the observed min/max clamp.  The
    default shape (``floor=1e-7``, 64 buckets) spans 100 ns to ~10^12 s
    of simulated latency — every span and grant-wait this simulator can
    produce.
    """

    __slots__ = ("floor", "counts", "count", "total", "min", "max")

    def __init__(self, *, floor: float = 1e-7, buckets: int = 64) -> None:
        if floor <= 0.0:
            raise ValueError("histogram floor must be positive")
        if buckets < 2:
            raise ValueError("histogram needs at least 2 buckets")
        self.floor = floor
        self.counts = [0] * buckets
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def _index(self, value: float) -> int:
        if value < self.floor:
            return 0
        # frexp is exact: value/floor == m * 2**e with m in [0.5, 1),
        # so the bucket index is e-1 — no log() rounding at powers of 2.
        _, exponent = math.frexp(value / self.floor)
        return min(exponent - 1, len(self.counts) - 1)

    def add(self, value: float) -> None:
        """Fold one sample in (non-negative; zeros join bucket 0)."""
        self.counts[self._index(value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Bucket-wise fold of ``other`` into this histogram (shapes
        must match — merging is only meaningful between histograms of
        the same metric)."""
        if other.floor != self.floor or len(other.counts) != len(self.counts):
            raise ValueError(
                "cannot merge histograms of different shapes: "
                f"floor {self.floor} x{len(self.counts)} vs "
                f"{other.floor} x{len(other.counts)}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    def bounds(self, index: int) -> tuple[float, float]:
        """The ``[low, high)`` value range bucket ``index`` covers."""
        return self.floor * 2.0**index, self.floor * 2.0 ** (index + 1)

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> float | None:
        """Nearest-rank quantile estimate (None while empty).

        The answer is the geometric midpoint of the bucket holding the
        k-th smallest sample, clamped to the observed extremes — exact
        to within one octave, and exactly ``min``/``max`` at the ends.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                low, high = self.bounds(index)
                estimate = math.sqrt(low * high)
                return min(max(estimate, self.min), self.max)
        return self.max  # unreachable: counts sum to self.count

    def percentiles(
        self, qs: tuple[float, ...] = (0.5, 0.95, 0.99)
    ) -> dict[str, float | None]:
        """The standard dashboard triple, keyed ``p50``-style."""
        return {f"p{q * 100:g}": self.quantile(q) for q in qs}

    def to_dict(self) -> dict:
        """JSON-friendly form (the sideband deltas and ``--json``
        reports carry this)."""
        return {
            "floor": self.floor,
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LogHistogram":
        hist = cls(floor=data["floor"], buckets=len(data["counts"]))
        hist.counts = list(data["counts"])
        hist.count = data["count"]
        hist.total = data["total"]
        hist.min = data["min"]
        hist.max = data["max"]
        return hist

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        if not self.count:
            return "LogHistogram(empty)"
        return (
            f"LogHistogram({self.count} samples, "
            f"min={self.min:g}, p50={self.quantile(0.5):g}, max={self.max:g})"
        )


@dataclass
class Alert:
    """One watchdog firing: when it tripped, when (if) it cleared, and
    the series values that tripped it."""

    rule: str
    host: str
    fired_at: float
    cleared_at: float | None = None
    values: dict[str, float | None] = field(default_factory=dict)
    message: str = ""

    @property
    def active(self) -> bool:
        return self.cleared_at is None

    def to_dict(self) -> dict:
        """JSON-friendly form (the ``--json`` profile report and the
        trace exporter both use it)."""
        return {
            "rule": self.rule,
            "host": self.host,
            "fired_at": self.fired_at,
            "cleared_at": self.cleared_at,
            "values": dict(self.values),
            "message": self.message,
        }


class SeriesView:
    """What a watchdog predicate sees: one host's series, by name."""

    def __init__(self, telemetry: "Telemetry", host: str) -> None:
        self._telemetry = telemetry
        self.host = host

    def series(self, name: str) -> Series | None:
        return self._telemetry._series.get((self.host, name))

    def latest(self, name: str) -> float | None:
        series = self.series(name)
        return None if series is None else series.latest()

    def rate(self, name: str, window: int = 2) -> float | None:
        series = self.series(name)
        return None if series is None else series.rate(window)

    def max_rate(
        self, *, prefix: str = "", suffix: str = "", window: int = 2
    ) -> float | None:
        """Largest windowed rate over every series whose name matches
        ``prefix``/``suffix`` — how the RTO detector watches *any*
        timer on the host without knowing endpoint names."""
        best: float | None = None
        for (host, name), series in self._telemetry._series.items():
            if host != self.host:
                continue
            if not (name.startswith(prefix) and name.endswith(suffix)):
                continue
            rate = series.rate(window)
            if rate is not None and (best is None or rate > best):
                best = rate
        return best

    def max_latest(
        self, *, prefix: str = "", suffix: str = ""
    ) -> float | None:
        """Largest latest value over every matching series."""
        best: float | None = None
        for (host, name), series in self._telemetry._series.items():
            if host != self.host:
                continue
            if not (name.startswith(prefix) and name.endswith(suffix)):
                continue
            value = series.latest()
            if value is not None and (best is None or value > best):
                best = value
        return best

    def max_rate_any_host(
        self, *, prefix: str = "", suffix: str = "", window: int = 2
    ) -> float | None:
        """Largest windowed rate over matching series on **every** host
        of this telemetry instance (one world = one segment, so "every
        host" is segment-local).  The partition watchdog uses this: its
        own bridge gauges live under a segment pseudo-host, but "local
        traffic is healthy" is a claim about the real hosts' series."""
        best: float | None = None
        for (_, name), series in self._telemetry._series.items():
            if not (name.startswith(prefix) and name.endswith(suffix)):
                continue
            rate = series.rate(window)
            if rate is not None and (best is None or rate > best):
                best = rate
        return best


@dataclass
class WatchdogRule:
    """A declarative health rule with hysteresis.

    ``predicate(view)`` is evaluated once per tick per host the rule is
    bound to; after ``fire_after`` consecutive true ticks an
    :class:`Alert` fires, and after ``clear_after`` consecutive false
    ticks an active alert clears.  ``capture`` names the series whose
    latest values are recorded on the alert as the triggering evidence.
    """

    name: str
    predicate: Callable[[SeriesView], bool]
    fire_after: int = 3
    clear_after: int = 6
    capture: tuple[str, ...] = ()
    message: str = ""

    def __post_init__(self) -> None:
        if self.fire_after < 1 or self.clear_after < 1:
            raise ValueError("fire_after and clear_after must be at least 1")


class _RuleState:
    """Per-(rule, host) hysteresis bookkeeping."""

    __slots__ = ("rule", "view", "true_ticks", "false_ticks", "alert")

    def __init__(self, rule: WatchdogRule, view: SeriesView) -> None:
        self.rule = rule
        self.view = view
        self.true_ticks = 0
        self.false_ticks = 0
        self.alert: Alert | None = None


# ---------------------------------------------------------------------------
# built-in detectors
# ---------------------------------------------------------------------------


def _livelock(view: SeriesView) -> bool:
    # Receive livelock signature: the port-overflow drop rate (CPU
    # fully sunk, packet thrown away anyway) exceeds the delivery rate.
    overflow = view.rate("pf.drop_overflow", window=8)
    delivered = view.rate("pf.delivered", window=8)
    if overflow is None or delivered is None:
        return False
    return overflow > 0.0 and overflow > delivered


def _pool_exhausted(view: SeriesView) -> bool:
    denied = view.rate("pool.denied", window=8)
    available = view.latest("pool.available")
    if denied is not None and denied > 0.0:
        return True
    return available is not None and available <= 0


def _poll_residency(view: SeriesView) -> bool:
    polling = view.latest("nic.polling")
    return polling is not None and polling >= 1.0


def _rto_backoff_storm(view: SeriesView) -> bool:
    # Any adaptive retransmission timer at >= 2 consecutive backoffs
    # (4x its base timeout) is in an exponential-backoff episode.
    backoff = view.max_latest(prefix="rto.", suffix=".backoff")
    return backoff is not None and backoff >= 4.0


def partition_watchdog(link_id: str) -> WatchdogRule:
    """A cross-segment partition detector for one bridge link.

    Bound to a segment's pseudo-host (``segment:<name>``) where the
    bridge gauges live.  The signature of a partition — as opposed to a
    merely idle link or a quiesced segment — is *selective* silence:
    cross-segment frames stop arriving (``bridge.<link>.ingress`` rate
    collapses to zero after having been nonzero) while local traffic
    keeps flowing (some host still delivers packets).  A segment that
    went idle entirely does not fire this rule.
    """
    ingress = f"bridge.{link_id}.ingress"

    def _partitioned(view: SeriesView) -> bool:
        latest = view.latest(ingress)
        if latest is None or latest <= 0.0:
            return False  # never saw cross traffic — nothing collapsed
        rate = view.rate(ingress, window=8)
        if rate is None or rate > 0.0:
            return False  # cross traffic still arriving
        local = view.max_rate_any_host(
            prefix="pf.", suffix="delivered", window=8
        )
        return local is not None and local > 0.0

    return WatchdogRule(
        name=f"partition:{link_id}",
        predicate=_partitioned,
        fire_after=4,
        clear_after=4,
        capture=(
            ingress,
            f"bridge.{link_id}.forwarded",
            f"bridge.{link_id}.dropped_link_down",
        ),
        message=(
            "cross-segment goodput collapsed while local traffic stayed "
            f"healthy — link {link_id} looks partitioned"
        ),
    )


def builtin_watchdogs() -> list[WatchdogRule]:
    """The stock detector set, armed per host by default.

    Each rule degrades to "never fires" when the series it watches do
    not exist on a host (no packet filter, no pool, no adaptive RTO).
    """
    return [
        WatchdogRule(
            "receive_livelock",
            _livelock,
            fire_after=4,
            clear_after=8,
            capture=("pf.drop_overflow", "pf.delivered", "cpu_util"),
            message=(
                "drop_overflow rate exceeds delivery rate: CPU is being "
                "sunk into packets that are then thrown away"
            ),
        ),
        WatchdogRule(
            "buffer_pool_exhausted",
            _pool_exhausted,
            fire_after=3,
            clear_after=6,
            capture=("pool.in_use", "pool.available", "pool.denied"),
            message="shared buffer pool exhausted or refusing reservations",
        ),
        WatchdogRule(
            "poll_mode_residency",
            _poll_residency,
            fire_after=8,
            clear_after=4,
            capture=("nic.polling", "nic.ring_depth"),
            message="NIC stuck in budgeted-polling mode (sustained overload)",
        ),
        WatchdogRule(
            "rto_backoff_storm",
            _rto_backoff_storm,
            fire_after=2,
            clear_after=4,
            capture=(),
            message=(
                "a retransmission timer is in exponential backoff "
                "(>= 2 consecutive timeouts without a fresh RTT sample)"
            ),
        ),
    ]


# ---------------------------------------------------------------------------
# snapshots — the picklable, mergeable form
# ---------------------------------------------------------------------------


@dataclass
class TelemetrySnapshot:
    """A :class:`Telemetry`'s recorded data, detached from the live
    world.

    The live sampler holds the scheduler and every kernel — none of it
    picklable, none of it meaningful outside its own process.  A shard
    therefore ships this snapshot back instead: series samples keyed
    ``(host, name)`` with their units, the alert log as dicts, and the
    tick count.  Snapshots from *disjoint-host* worlds merge into a
    whole-topology view; a shared host means two worlds both claim to
    have sampled the same kernel, which is a partitioning bug and
    raises.
    """

    series: dict[tuple, dict] = field(default_factory=dict)
    alerts: list[dict] = field(default_factory=list)
    ticks: int = 0

    def hosts(self) -> set:
        """Every host that contributed a series or an alert."""
        found = {host for (host, _) in self.series}
        found.update(alert["host"] for alert in self.alerts)
        return found

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Fold ``other``'s series and alerts into this snapshot.

        Alerts are re-sorted by fire time so the merged log reads as
        one timeline.  ``ticks`` takes the maximum — shards tick the
        same simulated clock, so the counts describe the same span.
        """
        overlap = self.hosts() & other.hosts()
        if overlap:
            raise ValueError(
                f"cannot merge telemetry that shares hosts: {sorted(overlap)}"
            )
        for key, data in other.series.items():
            self.series[key] = {
                "unit": data["unit"],
                "samples": list(data["samples"]),
            }
        self.alerts.extend(dict(alert) for alert in other.alerts)
        self.alerts.sort(key=lambda alert: (alert["fired_at"], alert["host"]))
        self.ticks = max(self.ticks, other.ticks)
        return self

    def latest(self, host: str, name: str) -> float | None:
        data = self.series.get((host, name))
        if not data or not data["samples"]:
            return None
        return data["samples"][-1][1]


# ---------------------------------------------------------------------------
# the sampler
# ---------------------------------------------------------------------------

#: KernelStats counters sampled as built-in rate gauges every tick.
#: ``cpu_time`` rate is CPU-seconds per second — utilization.
_STAT_RATE_GAUGES = (
    ("cpu_time", "cpu_util", "fraction"),
    ("syscalls", "syscalls_per_s", "1/s"),
    ("frames_received", "frames_rx_per_s", "1/s"),
    ("context_switches", "ctx_switches_per_s", "1/s"),
    ("interrupts", "interrupts_per_s", "1/s"),
)


class Telemetry:
    """The per-world sampler + watchdog engine.

    Create through :meth:`repro.sim.world.World.enable_telemetry`; the
    world attaches every current and future host.  Between ticks this
    object does nothing — all sampling happens inside the scheduled
    tick callback, on simulated time.
    """

    def __init__(
        self,
        scheduler,
        *,
        interval: float = DEFAULT_INTERVAL,
        capacity: int = DEFAULT_CAPACITY,
        watchdogs: bool = True,
    ) -> None:
        if interval <= 0.0:
            raise ValueError("telemetry interval must be positive")
        if capacity < 2:
            raise ValueError("series capacity must be at least 2")
        self.scheduler = scheduler
        self.interval = interval
        self.capacity = capacity
        self.armed = False
        self.ticks = 0
        self.alerts: list[Alert] = []
        self._series: dict[tuple[str, str], Series] = {}
        self._gauges: dict[tuple[str, str], Callable[[], float]] = {}
        self._hosts: dict[str, Any] = {}          # name -> SimKernel
        self._prev_stats: dict[str, KernelStats] = {}
        self._prev_stats_at: dict[str, float] = {}
        self._rules: list[_RuleState] = []
        self._default_rules = builtin_watchdogs() if watchdogs else []
        self._tick_event = None

    # -- registration ----------------------------------------------------

    def attach_host(self, kernel) -> None:
        """Wire one host kernel in: built-in stat gauges, any gauges its
        components already published, the stock watchdogs, and the
        publish-forwarding hook for components created later."""
        name = kernel.name
        if name in self._hosts:
            return
        self._hosts[name] = kernel
        kernel.telemetry = self
        self._prev_stats[name] = kernel.stats.snapshot()
        self._prev_stats_at[name] = self.scheduler.now
        for _, gauge_name, unit in _STAT_RATE_GAUGES:
            self._ensure_series(name, gauge_name, unit)
        for prefix, gauges, unit in getattr(kernel, "_gauge_providers", ()):
            self.register_gauges(name, prefix, gauges, unit=unit)
        view = SeriesView(self, name)
        for rule in self._default_rules:
            self._rules.append(_RuleState(rule, view))

    def register_gauges(
        self,
        host: str,
        prefix: str,
        gauges: dict[str, Callable[[], float]],
        *,
        unit: str = "",
    ) -> None:
        """Register named gauge callables for ``host``; sampled every
        tick into ``prefix + name`` series."""
        for name, fn in gauges.items():
            full = prefix + name
            self._ensure_series(host, full, unit)
            self._gauges[(host, full)] = fn

    def retract_gauges(self, host: str, prefix: str) -> None:
        """Stop sampling every gauge under ``prefix`` (a closed port's
        callables must not outlive the port).  Recorded samples stay."""
        for key in [
            key
            for key in self._gauges
            if key[0] == host and key[1].startswith(prefix)
        ]:
            del self._gauges[key]

    def add_rule(self, rule: WatchdogRule, *, host: str) -> None:
        """Bind an additional watchdog rule to one host."""
        self._rules.append(_RuleState(rule, SeriesView(self, host)))

    def _ensure_series(self, host: str, name: str, unit: str = "") -> Series:
        key = (host, name)
        series = self._series.get(key)
        if series is None:
            series = Series(host, name, unit=unit, capacity=self.capacity)
            self._series[key] = series
        return series

    # -- reading ----------------------------------------------------------

    def series(self, host: str, name: str) -> Series | None:
        return self._series.get((host, name))

    def series_for(self, host: str | None = None) -> list[Series]:
        return [
            series
            for (series_host, _), series in self._series.items()
            if host is None or series_host == host
        ]

    def names(self, host: str) -> list[str]:
        return [name for (h, name) in self._series if h == host]

    def view(self, host: str) -> SeriesView:
        return SeriesView(self, host)

    def active_alerts(self) -> list[Alert]:
        return [alert for alert in self.alerts if alert.active]

    def alerts_for(
        self, host: str | None = None, *, rule: str | None = None
    ) -> list[Alert]:
        return [
            alert
            for alert in self.alerts
            if (host is None or alert.host == host)
            and (rule is None or alert.rule == rule)
        ]

    # -- the tick ---------------------------------------------------------

    def arm(self) -> None:
        """Start sampling: first tick one interval from now."""
        if self.armed:
            return
        self.armed = True
        self._schedule_tick()

    def disarm(self) -> None:
        """Stop sampling; recorded series and alerts remain readable."""
        self.armed = False
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    def resume(self) -> None:
        """Restart the tick after the sampler parked itself quiescent
        (new load arrived after the world went idle)."""
        if self.armed and self._tick_event is None:
            self._schedule_tick()

    def _schedule_tick(self) -> None:
        self._tick_event = self.scheduler.schedule(self.interval, self._tick)

    def _tick(self) -> None:
        self._tick_event = None
        if not self.armed:
            return
        now = self.scheduler.now
        self.ticks += 1
        self._sample_stat_rates(now)
        for (host, name), fn in self._gauges.items():
            self._series[(host, name)].append(now, float(fn()))
        self._evaluate_watchdogs(now)
        # Keep ticking only while the world has other live events —
        # otherwise the sampler itself would keep the simulation from
        # ever quiescing.  A parked sampler can be resume()d.
        if self.scheduler.pending() > 0:
            self._schedule_tick()

    def _sample_stat_rates(self, now: float) -> None:
        for name, kernel in self._hosts.items():
            prev = self._prev_stats[name]
            prev_at = self._prev_stats_at[name]
            dt = now - prev_at
            if dt <= 0.0:
                continue
            rates = kernel.stats.rates(prev, dt)
            for counter, gauge_name, _ in _STAT_RATE_GAUGES:
                self._series[(name, gauge_name)].append(now, rates[counter])
            self._prev_stats[name] = kernel.stats.snapshot()
            self._prev_stats_at[name] = now

    def _evaluate_watchdogs(self, now: float) -> None:
        for state in self._rules:
            rule = state.rule
            tripped = bool(rule.predicate(state.view))
            if tripped:
                state.true_ticks += 1
                state.false_ticks = 0
                if state.alert is None and state.true_ticks >= rule.fire_after:
                    alert = Alert(
                        rule=rule.name,
                        host=state.view.host,
                        fired_at=now,
                        values={
                            name: state.view.latest(name)
                            for name in rule.capture
                        },
                        message=rule.message,
                    )
                    state.alert = alert
                    self.alerts.append(alert)
            else:
                state.false_ticks += 1
                state.true_ticks = 0
                if (
                    state.alert is not None
                    and state.false_ticks >= rule.clear_after
                ):
                    state.alert.cleared_at = now
                    state.alert = None

    # -- exporting --------------------------------------------------------

    def export(self) -> TelemetrySnapshot:
        """The sampler's recorded data as a picklable snapshot.

        Samples become plain ``(time, value)`` tuples; gauge callables,
        kernels and the scheduler stay behind.  Safe to call any time.
        """
        snapshot = TelemetrySnapshot(ticks=self.ticks)
        for (host, name), series in self._series.items():
            snapshot.series[(host, name)] = {
                "unit": series.unit,
                "samples": [(s.time, s.value) for s in series],
            }
        snapshot.alerts = [alert.to_dict() for alert in self.alerts]
        return snapshot

    # -- rendering --------------------------------------------------------

    def format_summary(self, host: str | None = None) -> str:
        """A compact text summary: per-series latest values and the
        alert log (the monitor app renders this live)."""
        lines: list[str] = []
        hosts: Iterable[str] = (
            [host] if host is not None else sorted(self._hosts)
        )
        for name in hosts:
            lines.append(f"telemetry on {name!r} ({self.ticks} ticks):")
            for series_name in sorted(self.names(name)):
                series = self._series[(name, series_name)]
                latest = series.latest()
                shown = "-" if latest is None else f"{latest:g}"
                unit = f" {series.unit}" if series.unit else ""
                lines.append(f"  {series_name:<24}{shown}{unit}")
        alerts = self.alerts_for(host)
        if alerts:
            lines.append("alerts:")
            for alert in alerts:
                end = (
                    "active"
                    if alert.cleared_at is None
                    else f"cleared {alert.cleared_at * 1000.0:.1f} ms"
                )
                lines.append(
                    f"  {alert.rule} on {alert.host} "
                    f"fired {alert.fired_at * 1000.0:.1f} ms, {end}"
                )
        else:
            lines.append("alerts: none")
        return "\n".join(lines)
