"""The simulated Unix-like kernel: syscalls, devices, scheduling, costs.

One :class:`SimKernel` is one host's operating system.  It owns:

* a **process table** of generator-coroutine processes
  (:mod:`repro.sim.process`) and the logic that resumes them, charging
  context switches when the CPU changes hands;
* a **syscall layer** (open/close/read/write/ioctl/select/pipe/
  sigwait/sleep/compute) that charges syscall overhead and counts
  domain crossings — the quantities of figure 2-1;
* a **character-device table**, the extension point the packet filter
  plugs into exactly as section 4 describes ("implemented ... as a
  'character special device' driver");
* the **network input/output hooks** the interface drivers call: a few
  lines of linkage that hand received frames to kernel-resident
  protocol handlers first and to the packet filter otherwise — the
  paper's "called from the network interface drivers upon receipt of
  packets not destined for kernel-resident protocols";
* a single-CPU **time accounting** model: every charged cost advances a
  CPU cursor, so concurrent activity serializes the way it would on the
  paper's uniprocessor VAXen.

The kernel never busy-waits: all progress is events on the shared
:class:`repro.sim.clock.EventScheduler`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from .clock import EventScheduler
from .costs import CostModel, MICROVAX_II
from .ledger import (
    Primitive,
    STAGE_INTERRUPT,
    apply_counters,
)
from .errors import (
    BadFileDescriptor,
    InvalidArgument,
    NoSuchDevice,
    ProcessKilled,
    SimError,
    SimTimeout,
)
from .process import (
    Close,
    Compute,
    Ioctl,
    Open,
    PipeCreate,
    Process,
    ProcessState,
    Read,
    Select,
    SigWait,
    Sleep,
    Syscall,
    Write,
)
from .stats import KernelStats

__all__ = ["SimKernel", "WaitQueue", "DeviceDriver", "DeviceHandle"]


class DeviceDriver:
    """Base class for character-device drivers (the packet filter, the
    display of table 6-7, kernel sockets...).  ``open`` returns a
    per-descriptor :class:`DeviceHandle`."""

    def open(self, kernel: "SimKernel", process: Process) -> "DeviceHandle":
        raise NotImplementedError


class DeviceHandle:
    """One open descriptor of a device.

    Handlers *complete* or *block* the calling process through the
    kernel; they never return results directly, because completion may
    need to happen later and must be charged CPU time first.
    """

    def read(self, process: Process, call: Read) -> None:
        raise InvalidArgument("device does not support read")

    def write(self, process: Process, call: Write) -> None:
        raise InvalidArgument("device does not support write")

    def ioctl(self, process: Process, call: Ioctl) -> None:
        raise InvalidArgument("device does not support ioctl")

    def close(self, process: Process) -> None:
        pass

    def poll_readable(self) -> bool:
        """Non-blocking readiness probe; select() relies on it."""
        return False


class WaitQueue:
    """Processes blocked on one condition, with optional timeouts.

    The retry-based protocol keeps blocking logic in one place: a
    blocked operation is simply re-executed when the queue is woken,
    and either completes or blocks again.
    """

    def __init__(self, kernel: "SimKernel", component: str = "kernel") -> None:
        self._kernel = kernel
        self.component = component
        self._waiters: list[dict] = []
        # Register with the kernel so kill() can evict a victim from
        # every queue it might be parked on without the queues having
        # to know about each other.
        registry = getattr(kernel, "_wait_queues", None)
        if registry is not None:
            registry.append(self)

    def __len__(self) -> int:
        return len(self._waiters)

    def block(
        self,
        process: Process,
        retry: Callable[[Process], None],
        *,
        timeout: float | None = None,
        on_timeout: Callable[[Process], None] | None = None,
    ) -> None:
        """Park ``process``; ``retry(process)`` runs on wake.

        If ``timeout`` elapses first, ``on_timeout(process)`` runs
        instead (default: fail the syscall with :class:`SimTimeout`).
        """
        process.state = ProcessState.BLOCKED
        entry: dict = {"process": process, "retry": retry, "timer": None}
        if timeout is not None:
            if on_timeout is None:
                on_timeout = self._default_timeout
            entry["timer"] = self._kernel.scheduler.schedule(
                timeout, self._fire_timeout, entry, on_timeout
            )
        self._waiters.append(entry)

    def _default_timeout(self, process: Process) -> None:
        self._kernel.fail(process, SimTimeout())

    def _fire_timeout(self, entry: dict, on_timeout: Callable[[Process], None]) -> None:
        if entry not in self._waiters:
            return
        self._waiters.remove(entry)
        on_timeout(entry["process"])

    def wake_all(self) -> None:
        """Retry every parked operation (each may complete or re-block).

        The retry is *deferred* past the wakeup and context-switch
        latency rather than run instantly: a woken process only looks
        at the queue once it is actually running again, and packets
        keep arriving during that window — which is how read batches
        form at all (figure 3-5).
        """
        waiters, self._waiters = self._waiters, []
        for entry in waiters:
            if entry["timer"] is not None:
                entry["timer"].cancel()
            self._kernel.charge_wakeup(component=self.component)
            runs_at = (
                self._kernel.cpu_available_at
                + self._kernel.costs.context_switch
            )
            self._kernel.scheduler.schedule_at(
                runs_at, self._deferred_retry, entry
            )

    def _deferred_retry(self, entry: dict) -> None:
        process = entry["process"]
        if process.done or process.state is not ProcessState.BLOCKED:
            return  # resolved some other way while the wake was in flight
        entry["retry"](process)

    def discard(self, process: Process) -> None:
        """Forget any parked operation of ``process`` (kill teardown):
        its timers are cancelled and its retries will never run."""
        kept = []
        for entry in self._waiters:
            if entry["process"] is process:
                if entry["timer"] is not None:
                    entry["timer"].cancel()
            else:
                kept.append(entry)
        self._waiters = kept

    def fail_all(self, error: SimError) -> None:
        """Fail every parked operation with ``error`` — the queue's
        condition can never come true again (its device closed, its
        peer died).  A blocked read must error out, not hang forever."""
        waiters, self._waiters = self._waiters, []
        for entry in waiters:
            if entry["timer"] is not None:
                entry["timer"].cancel()
            process = entry["process"]
            if process.done:
                continue
            self._kernel.charge_wakeup(component=self.component)
            self._kernel.fail(process, error)


class SimKernel:
    """One simulated host kernel.  See the module docstring."""

    def __init__(
        self,
        scheduler: EventScheduler,
        costs: CostModel = MICROVAX_II,
        name: str = "host",
    ) -> None:
        self.scheduler = scheduler
        self.costs = costs
        self.name = name
        self.stats = KernelStats()
        #: optional :class:`repro.sim.ledger.Ledger`; None disables all
        #: event recording (the zero-overhead default).
        self.ledger = None
        self._ledger_packet: int | None = None  # packet being processed
        self.processes: dict[int, Process] = {}
        self._devices: dict[str, DeviceDriver] = {}
        self._ethertype_handlers: dict[int, Callable] = {}
        self._packet_filter = None      # the PF driver, when registered
        self.pf_sees_all = False        #: deliver even claimed frames to the PF
        self._nics: list = []
        self._next_pid = 1
        self._cpu_free_at = 0.0
        self._last_pid: int | None = None
        self._select_waiters: list[dict] = []
        self._sig_waiters: dict[int, Process] = {}
        self._wait_queues: list[WaitQueue] = []
        #: optional :class:`repro.sim.overload.RxPolicy`; None keeps the
        #: classic ungated interrupt-per-frame receive path.
        self.rx_policy = None
        #: optional :class:`repro.sim.overload.BufferPool` gating ring
        #: and port-queue admission; None = unbounded buffers.
        self.buffer_pool = None
        #: early-classification hook the packet-filter device registers:
        #: ``fn(frame) -> bool`` — True means every port this frame
        #: would reach is already full, so admission may shed it before
        #: any filter interpretation or copy happens.
        self._rx_classifier: Callable[[bytes], bool] | None = None
        #: optional :class:`repro.sim.telemetry.Telemetry`; None keeps
        #: the zero-overhead default (no sampler tick, no gauges read).
        self.telemetry = None
        #: gauges components published before (or without) telemetry
        #: being armed: ``(prefix, {name: fn}, unit)`` triples.  One
        #: list append per component, never per packet.
        self._gauge_providers: list[tuple[str, dict, str]] = []

    # ------------------------------------------------------------------
    # telemetry gauge publication
    # ------------------------------------------------------------------

    def publish_gauges(
        self,
        prefix: str,
        gauges: dict[str, Callable[[], float]],
        *,
        unit: str = "",
    ) -> None:
        """Offer named gauge callables to the world's telemetry sampler.

        Components (NIC, ports, buffer pool, RTO timers) call this at
        creation time; the callables are buffered here so the sampler
        never has to import the layers it observes.  With no telemetry
        armed this is a single list append — the free-when-off contract.
        """
        self._gauge_providers.append((prefix, gauges, unit))
        if self.telemetry is not None:
            self.telemetry.register_gauges(self.name, prefix, gauges, unit=unit)

    def retract_gauges(self, prefix: str) -> None:
        """Withdraw every gauge published under ``prefix`` (port close:
        the callables must not outlive the object they read)."""
        self._gauge_providers = [
            provider
            for provider in self._gauge_providers
            if not provider[0].startswith(prefix)
        ]
        if self.telemetry is not None:
            self.telemetry.retract_gauges(self.name, prefix)

    # ------------------------------------------------------------------
    # CPU time accounting
    # ------------------------------------------------------------------

    def charge(self, cost: float) -> float:
        """Consume ``cost`` seconds of CPU; returns when the CPU frees.

        Work starts no earlier than now and no earlier than the end of
        previously charged work — the single-CPU serialization.
        """
        start = max(self.scheduler.now, self._cpu_free_at)
        self._cpu_free_at = start + cost
        self.stats.cpu_time += cost
        return self._cpu_free_at

    def account(
        self,
        primitive: Primitive,
        cost: float = 0.0,
        *,
        quantity: int = 1,
        component: str = "kernel",
        packet_id: int | None = None,
        flow: Any = None,
    ) -> float:
        """Charge ``cost`` attributed to ``primitive`` and bump the
        counters it stands for; returns when the CPU frees.

        This is the one choke point between charge sites and the books:
        the live ``stats`` update and the ledger event are emitted
        together, so they can never drift apart (the reconciliation
        invariant of ``tests/sim/test_ledger.py``).  With no ledger
        attached the extra work is a single ``None`` check.
        """
        end = self.charge(cost)
        apply_counters(self.stats, primitive, quantity)
        if self.ledger is not None:
            if packet_id is None:
                packet_id = self._ledger_packet
            self.ledger.record(
                primitive,
                host=self.name,
                at=self.scheduler.now,
                cost=cost,
                quantity=quantity,
                component=component,
                packet_id=packet_id,
                flow=flow,
            )
        return end

    def charge_copy(
        self,
        nbytes: int,
        *,
        component: str = "kernel",
        packet_id: int | None = None,
    ) -> float:
        return self.account(
            Primitive.COPY,
            self.costs.copy_cost(nbytes),
            quantity=nbytes,
            component=component,
            packet_id=packet_id,
        )

    def charge_wakeup(
        self,
        *,
        component: str = "kernel",
        packet_id: int | None = None,
    ) -> float:
        return self.account(
            Primitive.WAKEUP,
            self.costs.wakeup,
            component=component,
            packet_id=packet_id,
        )

    @property
    def cpu_available_at(self) -> float:
        return max(self.scheduler.now, self._cpu_free_at)

    # ------------------------------------------------------------------
    # devices
    # ------------------------------------------------------------------

    def register_device(self, name: str, driver: DeviceDriver) -> None:
        if name in self._devices:
            raise ValueError(f"device {name!r} already registered")
        self._devices[name] = driver

    def device(self, name: str) -> DeviceDriver:
        try:
            return self._devices[name]
        except KeyError:
            raise NoSuchDevice(name) from None

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------

    def spawn(self, name: str, body) -> Process:
        """Create a process from a generator; it starts at current time."""
        process = Process(self._next_pid, name, body)
        self._next_pid += 1
        self.processes[process.pid] = process
        process.started_at = self.scheduler.now
        self.scheduler.schedule_at(
            self.cpu_available_at, self._resume, process, None, None
        )
        return process

    def complete(self, process: Process, value: Any) -> None:
        """Finish the in-flight syscall of ``process`` with ``value``."""
        if process.done:
            return  # e.g. a sleep timer firing after the process was killed
        was_blocked = process.state is ProcessState.BLOCKED
        process.state = ProcessState.READY
        self.scheduler.schedule_at(
            self.cpu_available_at, self._resume, process, value, None,
            was_blocked,
        )

    def fail(self, process: Process, error: SimError) -> None:
        """Finish the in-flight syscall by raising ``error`` in-process."""
        if process.done:
            return
        was_blocked = process.state is ProcessState.BLOCKED
        process.state = ProcessState.READY
        self.scheduler.schedule_at(
            self.cpu_available_at, self._resume, process, None, error,
            was_blocked,
        )

    def kill(self, process: Process, *, error: SimError | None = None) -> None:
        """Forcibly terminate ``process`` — the simulated SIGKILL.

        The crash-safety contract: after ``kill`` returns, no wait queue
        or select list holds the victim, its generator body has been
        closed (``finally`` blocks ran), and every fd it owned has been
        closed — which is what detaches its filters, returns its port
        queues to the buffer pool, and errors any peer blocked on it.
        A crashed consumer must never leak buffers or wedge the demux.
        """
        if process.done:
            return
        if error is None:
            error = ProcessKilled(f"{process.name} (pid {process.pid}) killed")
        for queue in self._wait_queues:
            queue.discard(process)
        kept = []
        for entry in self._select_waiters:
            if entry["process"] is process:
                if entry["timer"] is not None:
                    entry["timer"].cancel()
            else:
                kept.append(entry)
        self._select_waiters = kept
        self._sig_waiters.pop(process.pid, None)
        try:
            process.body.close()
        except Exception:
            pass  # a body that dies in its finally is already dead
        self._finish(process, ProcessState.FAILED, error=error)

    def _resume(
        self,
        process: Process,
        value: Any,
        error: SimError | None,
        was_blocked: bool = False,
    ) -> None:
        if process.done:
            return
        # A context switch happens when the CPU changes processes — and
        # also whenever a *blocked* process resumes, because waking from
        # tsleep() goes through swtch() even on an otherwise idle system.
        # §6.5.1's best case ("the receiving process will never be
        # suspended, and no context switches take place") is the case
        # where reads find data queued and never block at all.
        if was_blocked or (
            self._last_pid is not None and self._last_pid != process.pid
        ):
            self.account(
                Primitive.CONTEXT_SWITCH,
                self.costs.context_switch,
                component="sched",
            )
        self._last_pid = process.pid
        process.state = ProcessState.RUNNING
        try:
            if error is not None:
                call = process.body.throw(error)
            else:
                call = process.body.send(value)
        except StopIteration as stop:
            self._finish(process, ProcessState.DONE, result=stop.value)
            return
        except Exception as exc:
            # The process let an error escape (a kernel error or its own
            # bug): it dies with it, and the world keeps running — one
            # crashing process must never take the simulation down.
            self._finish(process, ProcessState.FAILED, error=exc)
            return
        self._syscall(process, call)

    def _finish(self, process, state, result=None, error=None) -> None:
        process.state = state
        process.result = result
        process.error = error
        process.finished_at = self.scheduler.now
        for fd in list(process.fds):
            self._close_fd(process, fd)

    # ------------------------------------------------------------------
    # syscall dispatch
    # ------------------------------------------------------------------

    def _syscall(self, process: Process, call: Syscall) -> None:
        if not isinstance(call, Syscall):
            self.fail(
                process,
                InvalidArgument(f"process yielded non-syscall {call!r}"),
            )
            return
        self.account(Primitive.SYSCALL, self.costs.syscall)

        try:
            if isinstance(call, Open):
                driver = self.device(call.path)
                handle = driver.open(self, process)
                self.complete(process, process.allocate_fd(handle))
            elif isinstance(call, Close):
                self._close_fd(process, call.fd)
                self.complete(process, None)
            elif isinstance(call, Read):
                self._handle_of(process, call.fd).read(process, call)
            elif isinstance(call, Write):
                self._handle_of(process, call.fd).write(process, call)
            elif isinstance(call, Ioctl):
                self._handle_of(process, call.fd).ioctl(process, call)
            elif isinstance(call, Select):
                self._select(process, call)
            elif isinstance(call, Sleep):
                process.state = ProcessState.BLOCKED
                self.scheduler.schedule(
                    call.duration, self.complete, process, None
                )
            elif isinstance(call, Compute):
                self.account(Primitive.COMPUTE, call.duration, component="user")
                self.complete(process, None)
            elif isinstance(call, PipeCreate):
                self._make_pipe(process)
            elif isinstance(call, SigWait):
                self._sigwait(process)
            else:
                raise InvalidArgument(f"unknown syscall {call!r}")
        except SimError as exc:
            self.fail(process, exc)

    def _handle_of(self, process: Process, fd: int) -> DeviceHandle:
        try:
            return process.fds[fd]
        except KeyError:
            raise BadFileDescriptor(f"fd {fd} in {process.name}") from None

    def _close_fd(self, process: Process, fd: int) -> None:
        handle = process.fds.pop(fd, None)
        if handle is None:
            raise BadFileDescriptor(f"fd {fd} in {process.name}")
        handle.close(process)

    # ------------------------------------------------------------------
    # select
    # ------------------------------------------------------------------

    def _select(self, process: Process, call: Select) -> None:
        ready = self._ready_fds(process, call.read_fds)
        if ready:
            self.complete(process, ready)
            return
        if call.timeout == 0:
            self.complete(process, [])
            return
        process.state = ProcessState.BLOCKED
        entry: dict = {"process": process, "call": call, "timer": None}
        if call.timeout is not None:
            entry["timer"] = self.scheduler.schedule(
                call.timeout, self._select_timeout, entry
            )
        self._select_waiters.append(entry)

    def _ready_fds(self, process: Process, fds: Iterable[int]) -> list[int]:
        ready = []
        for fd in fds:
            handle = self._handle_of(process, fd)
            if handle.poll_readable():
                ready.append(fd)
        return ready

    def _select_timeout(self, entry: dict) -> None:
        if entry not in self._select_waiters:
            return
        self._select_waiters.remove(entry)
        self.complete(entry["process"], [])

    def readiness_changed(self) -> None:
        """Devices call this after new data arrives; wakes select()ors."""
        if not self._select_waiters:
            return
        still_waiting = []
        for entry in self._select_waiters:
            ready = self._ready_fds(entry["process"], entry["call"].read_fds)
            if ready:
                if entry["timer"] is not None:
                    entry["timer"].cancel()
                self.charge_wakeup(component="select")
                self.complete(entry["process"], ready)
            else:
                still_waiting.append(entry)
        self._select_waiters = still_waiting

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------

    def post_signal(self, process: Process, signal: int) -> None:
        """Deliver ``signal`` to ``process`` (the SETSIGNAL facility)."""
        self.account(Primitive.SIGNAL, component="signal")
        process.pending_signals.append(signal)
        waiter = self._sig_waiters.pop(process.pid, None)
        if waiter is not None:
            self.charge_wakeup(component="signal")
            self.complete(process, process.pending_signals.pop(0))

    def _sigwait(self, process: Process) -> None:
        if process.pending_signals:
            self.complete(process, process.pending_signals.pop(0))
            return
        process.state = ProcessState.BLOCKED
        self._sig_waiters[process.pid] = process

    # ------------------------------------------------------------------
    # pipes
    # ------------------------------------------------------------------

    def _make_pipe(self, process: Process) -> None:
        from .pipe import Pipe  # local import avoids a cycle

        pipe = Pipe(self)
        read_fd = process.allocate_fd(pipe.read_end)
        write_fd = process.allocate_fd(pipe.write_end)
        self.complete(process, (read_fd, write_fd))

    def share_fd(self, owner: Process, fd: int, other: Process) -> int:
        """Duplicate ``owner``'s descriptor into ``other``'s fd table —
        the stand-in for fork-then-inherit, which a generator-based
        process model cannot express directly."""
        handle = self._handle_of(owner, fd)
        retain = getattr(handle, "retain", None)
        if retain is not None:
            retain()
        return other.allocate_fd(handle)

    # ------------------------------------------------------------------
    # network linkage (what each interface driver gets patched with)
    # ------------------------------------------------------------------

    def attach_nic(self, nic) -> None:
        nic.kernel = self
        self._nics.append(nic)
        gauges = getattr(nic, "telemetry_gauges", None)
        if gauges is not None:
            # Second and later interfaces get an index so series names
            # stay unique ("nic.ring_depth", "nic1.ring_depth", ...).
            index = len(self._nics) - 1
            prefix = "nic." if index == 0 else f"nic{index}."
            self.publish_gauges(prefix, gauges())

    @property
    def nics(self) -> list:
        return list(self._nics)

    def register_ethertype(self, ethertype: int, handler: Callable) -> None:
        """Claim a data-link type for a kernel-resident protocol.

        ``handler(nic, frame)`` runs at interrupt level; its costs are
        its own business (the IP stack charges ip_input etc.)."""
        if ethertype in self._ethertype_handlers:
            raise ValueError(f"ethertype {ethertype:#06x} already claimed")
        self._ethertype_handlers[ethertype] = handler

    def register_packet_filter(self, driver) -> None:
        """Install the packet-filter pseudo-device's input hook."""
        self._packet_filter = driver

    def register_rx_classifier(
        self, classifier: Callable[[bytes], bool] | None
    ) -> None:
        """Install the early-classification admission hook.

        The packet-filter device registers its flow-cache peek here:
        ``classifier(frame) -> True`` means every port this frame's
        cached classification would reach is already full, so
        :meth:`admit_frame` may shed it at the ring — before filter
        interpretation, before any copy, before even a buffer is taken.
        """
        self._rx_classifier = classifier

    def admit_frame(self, nic, frame: bytes) -> Primitive | None:
        """Admission control at ring enqueue — pre-filter, pre-copy.

        Returns ``None`` to admit (when a :class:`BufferPool
        <repro.sim.overload.BufferPool>` is installed the frame now
        holds one ``("ring", host)`` reservation, which the NIC releases
        as it drains the slot), or the drop primitive to account the
        refusal under:

        * ``DROP_RING`` — the input ring itself is full;
        * ``DROP_SHED`` — the overload policy shed it early: ring
          occupancy past ``shed_watermark``, or the registered
          classifier says every cached target port is full (both only
          while the interface is in polling mode — under light load
          frames are never shed);
        * ``DROP_NOBUF`` — the shared buffer pool cannot cover a slot.
        """
        if len(nic._input_queue) >= nic.input_queue_limit:
            return Primitive.DROP_RING
        policy = self.rx_policy
        if policy is not None and getattr(nic, "polling", False):
            occupancy = len(nic._input_queue)
            if (
                policy.shed_watermark is not None
                and occupancy >= policy.shed_watermark
            ):
                return Primitive.DROP_SHED
            if (
                policy.early_shed_classified
                and self._rx_classifier is not None
                and self._rx_classifier(frame)
            ):
                return Primitive.DROP_SHED
        pool = self.buffer_pool
        if pool is not None and not pool.reserve(("ring", self.name)):
            return Primitive.DROP_NOBUF
        return None

    def network_input(
        self, nic, frame: bytes, packet_id: int | None = None
    ) -> None:
        """Receive interrupt: the 'few dozen lines of linkage code'.

        ``packet_id`` is the ledger span the NIC opened at wire arrival;
        when the ledger is on and no span exists yet (a frame injected
        straight into the kernel), one is opened here.
        """
        ethertype = nic.link.ethertype_of(frame)
        ledger = self.ledger
        if ledger is not None and packet_id is None:
            packet_id = ledger.begin_packet(
                self.name, at=self.scheduler.now, flow=ethertype, stage=None
            )
        self.account(
            Primitive.INTERRUPT,
            self.costs.interrupt_service,
            component="nic",
            packet_id=packet_id,
            flow=ethertype,
        )
        self.account(Primitive.FRAME_RX, component="nic", packet_id=packet_id)
        self.account(
            Primitive.BUFFER,
            self.costs.buffer_cost(len(frame)),
            quantity=len(frame),
            component="nic",
            packet_id=packet_id,
        )
        if ledger is not None:
            ledger.stage(packet_id, STAGE_INTERRUPT, self.scheduler.now)
        handler = self._ethertype_handlers.get(ethertype)
        claimed = False
        if handler is not None:
            previous = self._ledger_packet
            self._ledger_packet = packet_id
            try:
                handler(nic, frame)
            finally:
                self._ledger_packet = previous
            claimed = True
        pf_took = False
        if self._packet_filter is not None and (not claimed or self.pf_sees_all):
            pf_took = self._packet_filter.packet_arrived(
                nic, frame, packet_id=packet_id
            )
        if pf_took:
            return  # the span stays open until read (or dropped) via the PF
        if not claimed:
            self.account(
                Primitive.UNCLAIMED, component="nic", packet_id=packet_id
            )
            if ledger is not None:
                ledger.close_packet(packet_id, "unclaimed", self.scheduler.now)
        elif ledger is not None:
            ledger.close_packet(
                packet_id, "kernel_protocol", self.scheduler.now
            )

    def network_input_batch(
        self,
        nic,
        frames: list[bytes],
        packet_ids: list[int | None] | None = None,
    ) -> None:
        """Receive interrupt for a burst of frames.

        The section 6.4 batching argument applied to input: one
        interrupt-service charge covers the whole burst (buffer
        handling stays per-frame), and every frame bound for the packet
        filter goes down in a single :meth:`packets_arrived` call so
        the filter's fixed dispatch overhead is also charged once.
        Per-frame semantics — ethertype claiming, unclaimed counting —
        are identical to ``len(frames)`` calls of :meth:`network_input`.
        """
        if not frames:
            return
        ledger = self.ledger
        if packet_ids is None:
            packet_ids = [None] * len(frames)
        ethertypes = [nic.link.ethertype_of(frame) for frame in frames]
        if ledger is not None:
            packet_ids = [
                pid
                if pid is not None
                else ledger.begin_packet(
                    self.name,
                    at=self.scheduler.now,
                    flow=ethertype,
                    stage=None,
                )
                for pid, ethertype in zip(packet_ids, ethertypes)
            ]
        self.account(
            Primitive.INTERRUPT, self.costs.interrupt_service, component="nic"
        )
        for frame, pid in zip(frames, packet_ids):
            self.account(Primitive.FRAME_RX, component="nic", packet_id=pid)
            self.account(
                Primitive.BUFFER,
                self.costs.buffer_cost(len(frame)),
                quantity=len(frame),
                component="nic",
                packet_id=pid,
            )
            if ledger is not None:
                ledger.stage(pid, STAGE_INTERRUPT, self.scheduler.now)

        if not self._ethertype_handlers and self._packet_filter is not None:
            # Burst fast path: no kernel-resident protocol can claim any
            # frame, so skip the per-frame handler probe and hand the
            # whole burst to the packet filter in one call — the common
            # shape for a PF-only receiver under batched input.
            pf_frames = list(frames)
            pf_claimed = [False] * len(frames)
            pf_ids = list(packet_ids)
        else:
            pf_frames, pf_claimed, pf_ids = self._route_batch(
                nic, frames, ethertypes, packet_ids
            )
        if pf_frames:
            accepted = self._packet_filter.packets_arrived(
                nic, pf_frames, packet_ids=pf_ids
            )
            for took, was_claimed, pid in zip(accepted, pf_claimed, pf_ids):
                if took:
                    continue
                if not was_claimed:
                    self.account(
                        Primitive.UNCLAIMED, component="nic", packet_id=pid
                    )
                    if ledger is not None:
                        ledger.close_packet(
                            pid, "unclaimed", self.scheduler.now
                        )
                elif ledger is not None:
                    ledger.close_packet(
                        pid, "kernel_protocol", self.scheduler.now
                    )

    def _route_batch(
        self,
        nic,
        frames: list[bytes],
        ethertypes: list[int],
        packet_ids: list[int | None],
    ) -> tuple[list[bytes], list[bool], list[int | None]]:
        """Per-frame ethertype routing for :meth:`network_input_batch`:
        run kernel-protocol handlers, collect the packet-filter-bound
        remainder."""
        ledger = self.ledger
        pf_frames: list[bytes] = []
        pf_claimed: list[bool] = []
        pf_ids: list[int | None] = []
        for frame, ethertype, pid in zip(frames, ethertypes, packet_ids):
            handler = self._ethertype_handlers.get(ethertype)
            claimed = False
            if handler is not None:
                previous = self._ledger_packet
                self._ledger_packet = pid
                try:
                    handler(nic, frame)
                finally:
                    self._ledger_packet = previous
                claimed = True
            if self._packet_filter is not None and (
                not claimed or self.pf_sees_all
            ):
                pf_frames.append(frame)
                pf_claimed.append(claimed)
                pf_ids.append(pid)
            elif not claimed:
                self.account(Primitive.UNCLAIMED, component="nic", packet_id=pid)
                if ledger is not None:
                    ledger.close_packet(pid, "unclaimed", self.scheduler.now)
            elif ledger is not None:
                ledger.close_packet(pid, "kernel_protocol", self.scheduler.now)
        return pf_frames, pf_claimed, pf_ids

    def network_output(self, nic, frame: bytes) -> None:
        """Queue a frame for transmission (driver side)."""
        self.account(
            Primitive.DRIVER_SEND, self.costs.driver_send, component="driver"
        )
        self.account(
            Primitive.BUFFER,
            self.costs.buffer_cost(len(frame)),
            quantity=len(frame),
            component="driver",
        )
        nic.transmit(frame)
