"""Deterministic discrete-event scheduler — the simulation's clock.

Everything in :mod:`repro.sim` and :mod:`repro.net` advances time by
scheduling callbacks here.  Determinism matters: two events at the same
instant fire in scheduling order (a monotone sequence number breaks
ties), so simulation runs are exactly reproducible, which the test suite
and the benchmark tables rely on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "EventScheduler"]


@dataclass(order=True)
class Event:
    """A scheduled callback; cancellable until it fires."""

    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self.cancelled = True


class EventScheduler:
    """A min-heap of timed events with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._sequence = 0
        self._heap: list[Event] = []
        self.events_fired = 0

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule {delay}s into the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Run ``callback(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time}, clock is already at {self._now}"
            )
        event = Event(time=time, sequence=self._sequence, callback=callback, args=args)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def pending(self) -> int:
        """Number of live (uncancelled) events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)

    def next_time(self) -> float | None:
        """Time of the earliest live event (None when none remain).

        Cancelled events at the heap head are discarded as a side
        effect, so repeated calls are cheap — the sharded orchestrator
        polls this every synchronization window.
        """
        heap = self._heap
        while heap:
            if heap[0].cancelled:
                heapq.heappop(heap)
                continue
            return heap[0].time
        return None

    def step(self) -> bool:
        """Fire the next event; returns False when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_fired += 1
            event.callback(*event.args)
            return True
        return False

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> float:
        """Fire events until the queue drains, ``until`` is reached, or
        ``max_events`` have run.  Returns the clock afterwards.

        ``until`` also advances the clock to that time even if the queue
        drained earlier, so idle periods are representable.
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                return self._now
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                break
            if not self.step():
                break
            fired += 1
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_until(self, horizon: float) -> int:
        """Bounded-horizon advance: fire every event strictly before
        ``horizon``, then set the clock to exactly ``horizon``.

        This is the shard-side half of conservative synchronization
        (:mod:`repro.sim.orchestrator`): a shard granted time ``t`` may
        execute everything it knows about up to — but excluding — ``t``,
        because cross-segment frames produced elsewhere are guaranteed
        to arrive at or after the grant (wire serialization plus bridge
        store-and-forward delay is the lookahead).  The half-open window
        means an event *at* the horizon still fires in the next window,
        after any inter-segment frames for that instant were injected.

        Returns the number of events fired.  The horizon may equal the
        current clock (a zero-width window is a no-op); moving it
        backwards raises.
        """
        if horizon < self._now:
            raise ValueError(
                f"cannot run until {horizon}, clock is already at {self._now}"
            )
        fired = 0
        while True:
            head = self.next_time()
            if head is None or head >= horizon:
                break
            self.step()
            fired += 1
        self._now = horizon
        return fired
