"""Overload control: receive-livelock avoidance and buffer admission.

The paper puts demultiplexing in the kernel so the receive path stays
cheap — but cheap per packet is not enough under a packet storm.  An
interrupt-driven kernel will happily spend its entire CPU timeline on
receive interrupts for packets that are later dropped anyway, starving
the user processes the filters deliver to: the classic *receive
livelock* collapse (Mogul & Ramakrishnan, "Eliminating Receive Livelock
in an Interrupt-Driven Kernel").  Modern userspace stacks treat the
cure — bounded rings, polling quotas, early drop — as first-class.

This module holds the two policy objects the cure is built from:

* :class:`RxPolicy` — when to leave per-packet interrupt charging for
  budgeted polling (a ring-occupancy watermark), how much work one poll
  quantum may do (``poll_quota``), and what fraction of the CPU is
  *guaranteed* to non-receive work (``user_share``): after each poll
  batch the next poll is pushed out far enough that receive processing
  can never exceed ``1 - user_share`` of the timeline.

* :class:`BufferPool` — a shared, bounded kernel buffer pool (mbuf
  style) with per-port share limits.  Every frame sitting in an input
  ring or a port queue holds exactly one reservation, tagged with its
  owner, so leaks are *auditable*: after a world quiesces —
  crash-killed consumers included — :meth:`BufferPool.audit` must come
  back empty.

Neither object charges CPU by itself; they gate *where* the existing
cost model's charges happen.  Both are off by default — a world without
them behaves exactly as before (infinite interrupt capacity, no
admission control), which is what the livelock benchmark measures
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

__all__ = ["RxPolicy", "BufferPool", "PoolStats"]


@dataclass(frozen=True)
class RxPolicy:
    """Receive-path overload policy for one host.

    With a policy installed (``SimKernel.rx_policy``) the NIC's service
    events are *gated on the CPU*: the receive interrupt runs when the
    CPU cursor frees, not instantaneously, so the input ring holds real
    backlog and can genuinely fill — the precondition for every other
    mechanism here.
    """

    poll_enter: int = 8
    """Input-ring occupancy at which the kernel abandons per-frame
    interrupts and switches the interface to budgeted polling."""

    poll_quota: int = 16
    """Maximum frames one poll quantum may take off the ring.  One
    interrupt-service charge covers the whole quantum (mitigation)."""

    poll_period: float = 2e-3
    """Minimum spacing between poll quanta, seconds.  The user-share
    gap below usually dominates; the period is the floor."""

    user_share: float = 0.25
    """Guaranteed CPU fraction for non-receive work.  After a poll
    quantum that charged ``work`` seconds, the next poll is scheduled no
    earlier than ``work * user_share / (1 - user_share)`` seconds after
    the work completes, so receive processing is capped at
    ``1 - user_share`` of the CPU timeline no matter the offered load."""

    shed_watermark: int | None = None
    """Ring occupancy at which *polling-mode* arrivals are shed on
    admission (``dropped_shed``) before any buffer is taken — early
    drop strictly cheaper than a ring slot.  ``None`` disables the
    watermark; the hard ring limit still applies (``dropped_ring``)."""

    early_shed_classified: bool = True
    """Consult the packet filter's flow cache at admission (polling
    mode only): a frame whose cached classification says every target
    port is already at its queue limit or pool share is shed at the
    ring, before filter interpretation or any copy."""

    def __post_init__(self) -> None:
        if self.poll_enter < 1:
            raise ValueError("poll_enter must be at least 1")
        if self.poll_quota < 1:
            raise ValueError("poll_quota must be at least 1")
        if self.poll_period < 0.0:
            raise ValueError("poll_period must be non-negative")
        if not (0.0 <= self.user_share < 1.0):
            raise ValueError("user_share must be in [0, 1)")
        if self.shed_watermark is not None and self.shed_watermark < 1:
            raise ValueError("shed_watermark must be at least 1")

    def user_gap(self, work: float) -> float:
        """Idle gap owed to user processes after ``work`` seconds of
        receive processing — the reservation that makes ``user_share``
        a guarantee rather than a hope."""
        if self.user_share <= 0.0:
            return 0.0
        return work * self.user_share / (1.0 - self.user_share)


@dataclass
class PoolStats:
    """Lifetime counters for one :class:`BufferPool`."""

    reserved: int = 0        #: successful reservations
    released: int = 0        #: buffers returned
    denied_pool: int = 0     #: reservations refused: pool exhausted
    denied_share: int = 0    #: reservations refused: owner at its share
    peak_in_use: int = 0     #: high-water mark


class BufferPool:
    """A bounded pool of kernel packet buffers with owner accounting.

    Owners are arbitrary hashable tags — the NIC ring reserves under
    ``("ring", host)``, each packet-filter port under
    ``("port", port_id)`` — and ``port_share`` caps how many buffers a
    single ``("port", ...)`` owner may hold, so one slow consumer
    cannot starve the rest of the host (the per-port queue share of the
    admission-control story).
    """

    def __init__(self, capacity: int, *, port_share: int | None = None) -> None:
        if capacity < 1:
            raise ValueError("pool capacity must be at least 1")
        if port_share is not None and port_share < 1:
            raise ValueError("port_share must be at least 1")
        self.capacity = capacity
        self.port_share = port_share
        self.stats = PoolStats()
        self._held: dict[Hashable, int] = {}
        self._in_use = 0

    # -- introspection ---------------------------------------------------

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def held(self, owner: Hashable) -> int:
        """Buffers currently reserved by ``owner``."""
        return self._held.get(owner, 0)

    def share_of(self, owner: Hashable) -> int | None:
        """The reservation cap that applies to ``owner`` (None = only
        the pool capacity bounds it)."""
        if (
            self.port_share is not None
            and isinstance(owner, tuple)
            and owner
            and owner[0] == "port"
        ):
            return self.port_share
        return None

    def at_share(self, owner: Hashable) -> bool:
        """Would one more reservation for ``owner`` be refused?"""
        if self._in_use >= self.capacity:
            return True
        share = self.share_of(owner)
        return share is not None and self.held(owner) >= share

    def telemetry_gauges(self) -> dict:
        """Gauge callables for the telemetry sampler — occupancy and the
        refusal counters the pool-exhaustion watchdog watches.  The host
        publishes these when the pool is installed
        (:meth:`repro.sim.host.Host.enable_overload`)."""
        return {
            "in_use": lambda: self._in_use,
            "available": lambda: self.capacity - self._in_use,
            "capacity": lambda: self.capacity,
            "denied": lambda: self.stats.denied_pool + self.stats.denied_share,
        }

    def audit(self) -> dict[Hashable, int]:
        """Non-zero holdings by owner.

        The crash-safety invariant: once a world quiesces, every ring
        has drained and every port has been read or torn down, so the
        audit is empty — a non-empty audit is a leaked buffer, exactly
        the bug :meth:`SimKernel.kill` teardown exists to prevent.
        """
        return {owner: n for owner, n in self._held.items() if n > 0}

    # -- reserve / release ------------------------------------------------

    def reserve(self, owner: Hashable, count: int = 1) -> bool:
        """Take ``count`` buffers for ``owner``; all-or-nothing.

        Returns False — and takes nothing — when the pool or the
        owner's share cannot cover the request.
        """
        if count < 1:
            raise ValueError("count must be at least 1")
        if self._in_use + count > self.capacity:
            self.stats.denied_pool += 1
            return False
        share = self.share_of(owner)
        if share is not None and self.held(owner) + count > share:
            self.stats.denied_share += 1
            return False
        self._held[owner] = self.held(owner) + count
        self._in_use += count
        self.stats.reserved += count
        if self._in_use > self.stats.peak_in_use:
            self.stats.peak_in_use = self._in_use
        return True

    def release(self, owner: Hashable, count: int = 1) -> None:
        """Return ``count`` buffers held by ``owner``.

        Over-releasing raises: it means reservation bookkeeping went
        wrong somewhere, and a silent clamp would hide the leak the
        audit exists to catch.
        """
        if count < 1:
            raise ValueError("count must be at least 1")
        held = self.held(owner)
        if count > held:
            raise ValueError(
                f"owner {owner!r} releasing {count} buffers but holds {held}"
            )
        remaining = held - count
        if remaining:
            self._held[owner] = remaining
        else:
            self._held.pop(owner, None)
        self._in_use -= count
        self.stats.released += count

    def release_all(self, owner: Hashable) -> int:
        """Return every buffer ``owner`` holds; returns how many."""
        held = self.held(owner)
        if held:
            self.release(owner, held)
        return held
