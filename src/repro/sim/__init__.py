"""The host/kernel substrate: a deterministic discrete-event simulator.

The paper's measurements are statements about operating-system
primitives — context switches, system calls, kernel/user copies,
interrupt service.  This package provides a small but complete simulated
Unix on which those primitives are first-class, chargeable, countable
events; see DESIGN.md §1 for why that substitution preserves the
evaluation's meaning.
"""

from .clock import Event, EventScheduler
from .costs import FREE, MICROVAX_II, VAX_780, CostModel
from .errors import (
    BadFileDescriptor,
    BrokenPipe,
    DeviceBusy,
    InvalidArgument,
    NoSuchDevice,
    ProcessKilled,
    SimError,
    SimTimeout,
    WouldBlock,
)
from .host import Host
from .kernel import DeviceDriver, DeviceHandle, SimKernel, WaitQueue
from .ledger import (
    ChargeEvent,
    Ledger,
    PacketSpan,
    Primitive,
    SPAN_OUTCOMES,
    SPAN_STAGES,
)
from .overload import BufferPool, PoolStats, RxPolicy
from .pipe import Pipe
from .process import (
    Close,
    Compute,
    Ioctl,
    Open,
    PipeCreate,
    Process,
    ProcessState,
    Read,
    Select,
    SigWait,
    Sleep,
    Syscall,
    Write,
)
from .orchestrator import TopologyResult, run_topology
from .seeds import derive_rng, derive_seed
from .shard import LocalShard, ProcessShard, partition
from .stats import KernelStats, merge_stats
from .telemetry import (
    Alert,
    Sample,
    Series,
    SeriesView,
    Telemetry,
    TelemetrySnapshot,
    WatchdogRule,
    builtin_watchdogs,
)
from .topology import (
    BridgeEndpoint,
    BridgeSpec,
    SegmentContext,
    SegmentReport,
    SegmentRuntime,
    SegmentSpec,
    TopologySpec,
    register_builder,
    resolve_builder,
    segment_index_of,
    station_address,
)
from .world import World

__all__ = [
    "Event", "EventScheduler",
    "CostModel", "MICROVAX_II", "VAX_780", "FREE",
    "SimError", "SimTimeout", "BadFileDescriptor", "NoSuchDevice",
    "DeviceBusy", "InvalidArgument", "BrokenPipe", "WouldBlock",
    "ProcessKilled",
    "SimKernel", "WaitQueue", "DeviceDriver", "DeviceHandle",
    "RxPolicy", "BufferPool", "PoolStats",
    "Pipe", "KernelStats", "merge_stats", "Host", "World",
    "derive_seed", "derive_rng",
    "Ledger", "ChargeEvent", "PacketSpan", "Primitive",
    "SPAN_STAGES", "SPAN_OUTCOMES",
    "Telemetry", "TelemetrySnapshot", "Series", "Sample", "SeriesView",
    "Alert", "WatchdogRule", "builtin_watchdogs",
    "TopologySpec", "SegmentSpec", "BridgeSpec", "BridgeEndpoint",
    "SegmentContext", "SegmentRuntime", "SegmentReport",
    "register_builder", "resolve_builder",
    "station_address", "segment_index_of",
    "TopologyResult", "run_topology",
    "LocalShard", "ProcessShard", "partition",
    "Process", "ProcessState", "Syscall",
    "Open", "Close", "Read", "Write", "Ioctl", "Select", "Sleep",
    "Compute", "PipeCreate", "SigWait",
]
