"""Declarative link-fault schedules for bridged topologies.

PR 2's :class:`~repro.net.medium.ChaosConfig` injects faults *inside* a
segment — burst loss, reordering, corruption on the shared cable.  This
module extends the chaos machinery to the links *between* segments: a
:class:`LinkFault` declares an interval during which a bridge link is
down (optionally in one direction only), and the bridge endpoints drop
any frame whose capture **or** delivery instant falls inside an outage,
recording it under the cost-free ledger primitive
``dropped_link_down``.

Schedules are plain frozen data on the :class:`~repro.sim.topology.
TopologySpec` (``faults=...``), so they pickle into shard subprocesses
and every partitioning of the topology sees the identical outages —
link chaos is covered by the bitwise partition-independence oracle.

Randomized schedules (:func:`flap_schedule`) draw **only** from
:func:`repro.sim.seeds.derive_seed` under the ``("chaos", link_id, ...)``
namespace, so they are independent of ``PYTHONHASHSEED``, of
partitioning, and of every other consumer of the root seed —
:func:`schedule_fingerprint` renders a schedule canonically so the
determinism suite can assert that in subprocesses.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from .seeds import derive_rng

__all__ = [
    "LinkFault",
    "DIRECTION_BOTH",
    "DIRECTION_A_TO_B",
    "DIRECTION_B_TO_A",
    "link_partition",
    "flap_schedule",
    "intervals_for",
    "interval_covers",
    "parse_fault_spec",
    "schedule_fingerprint",
]

DIRECTION_BOTH = "both"
DIRECTION_A_TO_B = "a->b"
DIRECTION_B_TO_A = "b->a"

_DIRECTIONS = (DIRECTION_BOTH, DIRECTION_A_TO_B, DIRECTION_B_TO_A)

#: CLI spellings (colon-separated specs can't contain ``->``).
_DIRECTION_ALIASES = {
    "both": DIRECTION_BOTH,
    "a2b": DIRECTION_A_TO_B,
    "b2a": DIRECTION_B_TO_A,
    DIRECTION_A_TO_B: DIRECTION_A_TO_B,
    DIRECTION_B_TO_A: DIRECTION_B_TO_A,
}


@dataclass(frozen=True, slots=True)
class LinkFault:
    """One outage: ``link_id`` is down during ``[start, end)``.

    ``direction`` scopes the outage: :data:`DIRECTION_BOTH` downs the
    whole link; :data:`DIRECTION_A_TO_B` only the ``a``→``b`` crossing
    (an asymmetric partition — requests pass, replies vanish, the
    classic half-open failure).  Directions are named relative to the
    :class:`~repro.sim.topology.BridgeSpec`'s ``a``/``b`` ends.
    """

    link_id: str
    start: float
    end: float
    direction: str = DIRECTION_BOTH

    def __post_init__(self) -> None:
        if not self.link_id:
            raise ValueError("fault needs a link id")
        if not 0.0 <= self.start < self.end:
            raise ValueError(
                f"fault interval must satisfy 0 <= start < end, "
                f"got [{self.start}, {self.end})"
            )
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"direction must be one of {_DIRECTIONS}, got {self.direction!r}"
            )


def link_partition(
    link_id: str,
    at: float,
    heal_at: float,
    *,
    direction: str = DIRECTION_BOTH,
) -> tuple:
    """A partition-then-heal schedule: one outage ``[at, heal_at)``."""
    return (LinkFault(link_id, at, heal_at, direction),)


def flap_schedule(
    seed: int,
    link_id: str,
    *,
    start: float,
    until: float,
    mean_down: float,
    mean_up: float,
    direction: str = DIRECTION_BOTH,
) -> tuple:
    """A down/up flapping schedule with exponential dwell times.

    The link alternates up (mean ``mean_up``) and down (mean
    ``mean_down``) between ``start`` and ``until``, beginning with an up
    period.  All randomness comes from
    ``derive_seed(seed, "chaos", link_id, "flap")`` — the schedule is a
    pure function of ``(seed, link_id)`` and the shape parameters.
    """
    if mean_down <= 0.0 or mean_up <= 0.0:
        raise ValueError("mean dwell times must be positive")
    if not 0.0 <= start < until:
        raise ValueError("need 0 <= start < until")
    rng = derive_rng(seed, "chaos", link_id, "flap")
    faults = []
    t = start + rng.expovariate(1.0 / mean_up)
    while t < until:
        down_end = min(t + rng.expovariate(1.0 / mean_down), until)
        faults.append(LinkFault(link_id, t, down_end, direction))
        t = down_end + rng.expovariate(1.0 / mean_up)
    return tuple(faults)


def intervals_for(faults, link_id: str, direction: str) -> tuple:
    """The sorted ``(start, end)`` outages affecting one directed
    crossing of ``link_id`` (``direction`` is the endpoint's own
    crossing token, :data:`DIRECTION_A_TO_B` or :data:`DIRECTION_B_TO_A`).
    """
    if direction not in (DIRECTION_A_TO_B, DIRECTION_B_TO_A):
        raise ValueError(f"endpoint direction must be directed, got {direction!r}")
    return tuple(
        sorted(
            (fault.start, fault.end)
            for fault in faults
            if fault.link_id == link_id
            and fault.direction in (DIRECTION_BOTH, direction)
        )
    )


def interval_covers(intervals, t: float) -> bool:
    """True when ``t`` falls inside any of the sorted ``(start, end)``
    half-open intervals — i.e. the link is down at ``t``."""
    index = bisect.bisect_right(intervals, (t, float("inf"))) - 1
    if index < 0:
        return False
    start, end = intervals[index]
    return start <= t < end


def parse_fault_spec(text: str, *, seed: int = 0) -> tuple:
    """Fault schedules from the CLI's ``--faults`` string.

    Comma-separated clauses::

        down:LINK:START:END[:DIR]
        flap:LINK:START:END:MEAN_DOWN:MEAN_UP[:DIR]

    ``DIR`` is ``both`` (default), ``a2b`` or ``b2a``.  ``flap`` draws
    its dwell times from the ``derive_seed(seed, "chaos", LINK, "flap")``
    namespace, so the same CLI invocation replays the same outages.
    """
    faults: list[LinkFault] = []
    for clause in filter(None, (part.strip() for part in text.split(","))):
        fields = clause.split(":")
        kind = fields[0]
        try:
            if kind == "down" and 4 <= len(fields) <= 5:
                direction = _parse_direction(fields[4] if len(fields) == 5 else "both")
                faults.append(
                    LinkFault(
                        fields[1], float(fields[2]), float(fields[3]), direction
                    )
                )
            elif kind == "flap" and 6 <= len(fields) <= 7:
                direction = _parse_direction(fields[6] if len(fields) == 7 else "both")
                faults.extend(
                    flap_schedule(
                        seed,
                        fields[1],
                        start=float(fields[2]),
                        until=float(fields[3]),
                        mean_down=float(fields[4]),
                        mean_up=float(fields[5]),
                        direction=direction,
                    )
                )
            else:
                raise ValueError("unrecognized clause shape")
        except (ValueError, IndexError) as err:
            raise ValueError(
                f"bad fault clause {clause!r}: {err} "
                "(want down:LINK:START:END[:DIR] or "
                "flap:LINK:START:END:MEAN_DOWN:MEAN_UP[:DIR])"
            ) from err
    if not faults:
        raise ValueError(
            "empty fault spec (want comma-separated down:/flap: clauses)"
        )
    return tuple(faults)


def _parse_direction(token: str) -> str:
    try:
        return _DIRECTION_ALIASES[token]
    except KeyError:
        raise ValueError(
            f"unknown direction {token!r} (want both, a2b or b2a)"
        ) from None


def schedule_fingerprint(faults) -> str:
    """Canonical text for a schedule — ``repr`` floats, declaration
    order — so determinism tests can compare schedules bitwise across
    processes and ``PYTHONHASHSEED`` values."""
    return ";".join(
        f"{fault.link_id}[{fault.start!r},{fault.end!r}){fault.direction}"
        for fault in faults
    )
