"""Pipes — the IPC the user-level demultiplexer baseline pays for.

Section 6.5's analysis: "Since Unix does not support memory sharing,
the demultiplexing process requires two additional data transfers to
get the packet into the final receiving process."  Those two transfers
are exactly what this pipe charges: one kernel copy when the writer
writes, one when the reader reads.

Like a real Unix pipe this is a *byte stream*: a read drains whatever is
buffered (up to the requested size) in one kernel copy and one system
call, so a reader that fell behind catches up in one go — the pipe-side
analogue of received-packet batching, and the reason batching helps the
user-level demultiplexer at all (table 6-9).  Writers may pass a tuple
of byte strings (a vectored write: one system call, several chunks).
The capacity limit and writer blocking of the real thing are kept.
"""

from __future__ import annotations

from collections import deque

from .errors import BrokenPipe
from .kernel import DeviceHandle, SimKernel, WaitQueue
from .process import Process, Read, Write

__all__ = ["Pipe", "PIPE_CAPACITY"]

PIPE_CAPACITY = 4096
"""Maximum buffered bytes before writers block (4.3BSD's 4KB)."""


class Pipe:
    """A unidirectional message pipe with kernel-copy costs."""

    def __init__(self, kernel: SimKernel, capacity: int = PIPE_CAPACITY) -> None:
        self.kernel = kernel
        self.capacity = capacity
        self._chunks: deque[bytes] = deque()
        self._buffered = 0
        self._readers_open = True
        self._writers_open = True
        self._read_waiters = WaitQueue(kernel, component="pipe")
        self._write_waiters = WaitQueue(kernel, component="pipe")
        self.read_end = _ReadEnd(self)
        self.write_end = _WriteEnd(self)
        self.messages_transferred = 0

    # -- writer side -----------------------------------------------------

    def write(self, process: Process, call: Write) -> None:
        if not self._readers_open:
            self.kernel.fail(process, BrokenPipe("pipe has no reader"))
            return
        chunks = (
            (bytes(call.data),)
            if isinstance(call.data, (bytes, bytearray))
            else tuple(call.data)
        )
        total = sum(len(chunk) for chunk in chunks)
        if self._buffered + total > self.capacity and self._buffered > 0:
            self._write_waiters.block(
                process, lambda proc: self.write(proc, call)
            )
            return
        for chunk in chunks:
            self._chunks.append(chunk)
        self._buffered += total
        self.kernel.charge_copy(total, component="pipe")  # user -> kernel
        self.kernel.complete(process, total)
        self._read_waiters.wake_all()
        self.kernel.readiness_changed()

    # -- reader side ---------------------------------------------------------

    def read(self, process: Process, call: Read) -> None:
        if not self._chunks:
            if not self._writers_open:
                self.kernel.complete(process, b"")  # EOF
                return
            self._read_waiters.block(
                process, lambda proc: self.read(proc, call)
            )
            return
        size = call.size if call.size is not None else self._buffered
        out = bytearray()
        while self._chunks and len(out) < size:
            chunk = self._chunks[0]
            need = size - len(out)
            if len(chunk) <= need:
                out.extend(self._chunks.popleft())
                self.messages_transferred += 1
            else:
                out.extend(chunk[:need])
                self._chunks[0] = chunk[need:]
        self._buffered -= len(out)
        self.kernel.charge_copy(len(out), component="pipe")  # kernel -> user
        self.kernel.complete(process, bytes(out))
        self._write_waiters.wake_all()

    def readable(self) -> bool:
        return bool(self._chunks) or not self._writers_open

    def close_read(self) -> None:
        self._readers_open = False
        self._write_waiters.wake_all()  # writers now see BrokenPipe

    def close_write(self) -> None:
        self._writers_open = False
        self._read_waiters.wake_all()  # readers now see EOF


class _PipeEnd(DeviceHandle):
    """Common refcounting: an end shared into several fd tables (via
    ``SimKernel.share_fd``, the fork-inheritance stand-in) only really
    closes when its last descriptor does — as in Unix."""

    def __init__(self, pipe: Pipe) -> None:
        self.pipe = pipe
        self._references = 1

    def retain(self) -> None:
        self._references += 1

    def close(self, process: Process) -> None:
        self._references -= 1
        if self._references <= 0:
            self._really_close()

    def _really_close(self) -> None:
        raise NotImplementedError


class _ReadEnd(_PipeEnd):
    def read(self, process: Process, call: Read) -> None:
        self.pipe.read(process, call)

    def poll_readable(self) -> bool:
        return self.pipe.readable()

    def _really_close(self) -> None:
        self.pipe.close_read()


class _WriteEnd(_PipeEnd):
    def write(self, process: Process, call: Write) -> None:
        self.pipe.write(process, call)

    def _really_close(self) -> None:
        self.pipe.close_write()
