"""Simulated user processes and their syscall vocabulary.

A process body is a Python generator that *yields* syscall request
objects and receives their results back, e.g.::

    def client(host):
        def body():
            fd = yield Open("pf0")
            yield Ioctl(fd, PFIoctl.SETFILTER, my_filter)
            yield Write(fd, request_packet)
            packets = yield Read(fd)
            return packets
        return host.spawn("client", body())

This is the user/kernel boundary of the simulation: everything a process
does to the outside world goes through one of these requests, so the
kernel can charge syscall overhead and domain crossings exactly where
the real system would (figure 2-1's accounting).  Pure computation is
charged explicitly with :class:`Compute` — between syscalls, user code
runs in zero simulated time, the standard idealization for this kind of
simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Generator

__all__ = [
    "Syscall",
    "Open",
    "Close",
    "Read",
    "Write",
    "Ioctl",
    "Select",
    "Sleep",
    "Compute",
    "PipeCreate",
    "SigWait",
    "ProcessState",
    "Process",
]


class Syscall:
    """Marker base class for syscall request objects."""


@dataclass(frozen=True)
class Open(Syscall):
    """Open a device by name; returns a file descriptor."""

    path: str


@dataclass(frozen=True)
class Close(Syscall):
    """Close a file descriptor; returns None."""

    fd: int


@dataclass(frozen=True)
class Read(Syscall):
    """Read from a descriptor.

    For packet-filter ports the result is a list of
    :class:`repro.core.port.DeliveredPacket` — one element normally,
    every queued packet when the port has batching enabled (figure 3-5).
    For stream devices (sockets, pipes) the result is bytes of at most
    ``size``.
    """

    fd: int
    size: int | None = None


@dataclass(frozen=True)
class Write(Syscall):
    """Write to a descriptor; returns the byte count accepted."""

    fd: int
    data: bytes


@dataclass(frozen=True)
class Ioctl(Syscall):
    """Device control; returns a command-specific result."""

    fd: int
    command: int
    argument: Any = None


@dataclass(frozen=True)
class Select(Syscall):
    """Block until any of ``read_fds`` is readable; returns the ready
    subset (empty on timeout) — the 4.3BSD select of section 3."""

    read_fds: tuple[int, ...]
    timeout: float | None = None

    def __init__(self, read_fds, timeout: float | None = None) -> None:
        object.__setattr__(self, "read_fds", tuple(read_fds))
        object.__setattr__(self, "timeout", timeout)


@dataclass(frozen=True)
class Sleep(Syscall):
    """Block for a fixed simulated duration; returns None."""

    duration: float


@dataclass(frozen=True)
class Compute(Syscall):
    """Consume CPU in user mode for ``duration`` seconds.

    Protocol implementations charge their per-packet processing through
    this, making "user-level protocol processing" a measurable cost."""

    duration: float


@dataclass(frozen=True)
class PipeCreate(Syscall):
    """Create a pipe; returns ``(read_fd, write_fd)``."""


@dataclass(frozen=True)
class SigWait(Syscall):
    """Block until a signal is posted to this process; returns its
    number.  With the packet filter's SETSIGNAL this is the
    "interrupt-like facility using Unix signals" of section 3."""


class ProcessState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


class Process:
    """One simulated process: a pid, a name, a generator, and fd table."""

    def __init__(self, pid: int, name: str, body: Generator) -> None:
        self.pid = pid
        self.name = name
        self.body = body
        self.state = ProcessState.READY
        self.fds: dict[int, Any] = {}          # fd -> device handle
        self.next_fd = 3                        # 0..2 reserved, as ever
        self.pending_signals: list[int] = []
        self.result: Any = None
        self.error: BaseException | None = None
        self.started_at: float | None = None
        self.finished_at: float | None = None

    @property
    def done(self) -> bool:
        return self.state in (ProcessState.DONE, ProcessState.FAILED)

    def allocate_fd(self, handle: Any) -> int:
        fd = self.next_fd
        self.next_fd += 1
        self.fds[fd] = handle
        return fd

    def __repr__(self) -> str:
        return f"Process(pid={self.pid}, name={self.name!r}, state={self.state.value})"
