"""Topologies: many Ethernet segments joined by store-and-forward bridges.

The paper's world is a building network, not one cable: Ethernets tied
together by forwarding hosts (the "gateway" role its user-level network
code serves).  This module grows the single-segment simulator into that
shape — a :class:`TopologySpec` names segments, gives each a *builder*
that populates it with hosts and workloads, and joins them with
:class:`BridgeSpec` links.

The decomposition is also what makes the simulation partitionable
(:mod:`repro.sim.shard`): every segment gets its **own**
:class:`~repro.sim.world.World` — own scheduler, own RNGs, own ledger —
regardless of how many processes run them.  The only coupling between
segments is a bridged frame, which always arrives at least the bridge's
store-and-forward delay in the future; that delay is the *lookahead*
that conservative parallel simulation needs.  Because each segment's
world is identical no matter the partitioning, a one-process run and an
N-process run of the same seeded topology are bitwise equal.

Addressing: station addresses encode their segment in the high bytes
(``(segment_index + 1) << 16 | station``), so a bridge can route a
unicast frame by decoding its destination — the spirit of the paper's
network addresses, where the "network number" picks the cable.
Bridges form a tree (validated), so broadcast flooding terminates.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable

from ..net.ethernet import ETHERNET_10MB, LinkSpec
from ..net.medium import EgressFrame
from .faults import (
    DIRECTION_A_TO_B,
    DIRECTION_B_TO_A,
    interval_covers,
    intervals_for,
)
from .ledger import Ledger, Primitive
from .seeds import derive_seed
from .stats import KernelStats
from .telemetry import TelemetrySnapshot, partition_watchdog
from .world import World

__all__ = [
    "SegmentSpec",
    "BridgeSpec",
    "TopologySpec",
    "BridgeEndpoint",
    "SegmentContext",
    "SegmentRuntime",
    "SegmentReport",
    "station_address",
    "segment_index_of",
    "register_builder",
    "resolve_builder",
    "BRIDGE_STATION_BASE",
]

BRIDGE_STATION_BASE = 0xF000
"""Station numbers from here up are reserved for bridge endpoints."""


# ---------------------------------------------------------------------------
# addressing
# ---------------------------------------------------------------------------


def station_address(
    segment_index: int, station: int, link: LinkSpec = ETHERNET_10MB
) -> bytes:
    """The address of ``station`` on segment ``segment_index``.

    The segment index (plus one, so legacy single-segment addresses —
    which have zero high bytes — stay distinguishable) occupies the
    bytes above the low two; the station number the low two.
    """
    if not 0 <= station <= 0xFFFF:
        raise ValueError(f"station must fit in 16 bits, got {station}")
    if segment_index < 0:
        raise ValueError("segment index must be non-negative")
    value = ((segment_index + 1) << 16) | station
    return value.to_bytes(link.address_length, "big")


def segment_index_of(address: bytes) -> int | None:
    """The segment index encoded in ``address`` (None for broadcast or
    legacy un-prefixed addresses)."""
    if address == b"\xff" * len(address):
        return None
    prefix = int.from_bytes(address, "big") >> 16
    if prefix == 0:
        return None
    return prefix - 1


# ---------------------------------------------------------------------------
# specs
# ---------------------------------------------------------------------------


#: Builders registered by name (:func:`register_builder`).
_BUILDERS: dict[str, Callable] = {}


def register_builder(name: str):
    """Decorator: make a builder invocable by plain name in specs."""

    def decorate(fn: Callable) -> Callable:
        _BUILDERS[name] = fn
        return fn

    return decorate


def resolve_builder(ref: "str | Callable") -> Callable:
    """A builder callable from a spec reference.

    References are preferably strings — ``"pkg.module:function"`` dotted
    paths or :func:`register_builder` names — because strings survive
    pickling into shard subprocesses under any start method.  A bare
    callable also works for in-process runs.
    """
    if callable(ref):
        return ref
    if ref in _BUILDERS:
        return _BUILDERS[ref]
    if ":" in ref:
        module_name, _, attr = ref.partition(":")
        module = importlib.import_module(module_name)
        fn = getattr(module, attr, None)
        if fn is None:
            raise LookupError(f"module {module_name!r} has no {attr!r}")
        return fn
    raise LookupError(
        f"unknown builder {ref!r} (not registered, not a module:function path)"
    )


@dataclass(frozen=True)
class SegmentSpec:
    """One segment: its name and the builder that populates it.

    ``builder(ctx, **options)`` receives a :class:`SegmentContext` and
    creates hosts, installs filters and starts workload processes.
    """

    name: str
    builder: "str | Callable"
    options: dict = field(default_factory=dict)


@dataclass(frozen=True)
class BridgeSpec:
    """A store-and-forward bridge between two segments.

    ``delay`` is the forwarding latency — receive completion on one
    cable to transmission start on the other.  It is also the
    topology's synchronization lookahead, so it must be positive.
    """

    a: str
    b: str
    delay: float = 1e-3
    link_id: str = ""

    def __post_init__(self) -> None:
        if self.delay <= 0.0:
            raise ValueError("bridge delay must be positive (it is the lookahead)")
        if self.a == self.b:
            raise ValueError(f"bridge must join two distinct segments, got {self.a!r} twice")
        if not self.link_id:
            object.__setattr__(self, "link_id", f"{self.a}~{self.b}")

    def other(self, segment: str) -> str:
        return self.b if segment == self.a else self.a


@dataclass(frozen=True)
class TopologySpec:
    """The whole simulation, declaratively: segments, bridges, seed.

    A spec is plain data (builders as strings keep it picklable), so the
    identical spec can be built once in-process or once per shard
    subprocess — the foundation of the bitwise-equality guarantee.
    """

    segments: tuple
    bridges: tuple = ()
    seed: int = 0
    ledger: bool = True
    telemetry: bool = False
    telemetry_interval: float | None = None
    #: Declarative link-fault schedule (:class:`repro.sim.faults.LinkFault`
    #: records).  Plain frozen data, so every shard sees identical
    #: outages and link chaos stays partition-independent.
    faults: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "segments", tuple(self.segments))
        object.__setattr__(self, "bridges", tuple(self.bridges))
        object.__setattr__(self, "faults", tuple(self.faults))

    # -- structure ------------------------------------------------------

    def index_of(self, segment: str) -> int:
        for index, spec in enumerate(self.segments):
            if spec.name == segment:
                return index
        raise LookupError(f"no segment named {segment!r}")

    def window(self) -> float | None:
        """The synchronization window width: the smallest bridge delay
        (None when there are no bridges — segments are independent)."""
        if not self.bridges:
            return None
        return min(bridge.delay for bridge in self.bridges)

    def validate(self) -> None:
        """Raise on structural problems: duplicate names, dangling
        bridge references, or a cycle in the bridge graph (broadcast
        flooding requires a tree)."""
        names = [spec.name for spec in self.segments]
        if not names:
            raise ValueError("topology needs at least one segment")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate segment names in {names}")
        link_ids = [bridge.link_id for bridge in self.bridges]
        if len(set(link_ids)) != len(link_ids):
            raise ValueError(f"duplicate bridge link ids in {link_ids}")
        # Union-find: every bridge must join two previously separate
        # components, or the graph has a cycle and broadcasts would
        # circulate forever.
        parent = {name: name for name in names}

        def find(name: str) -> str:
            while parent[name] != name:
                parent[name] = parent[parent[name]]
                name = parent[name]
            return name

        for bridge in self.bridges:
            for end in (bridge.a, bridge.b):
                if end not in parent:
                    raise ValueError(
                        f"bridge {bridge.link_id!r} references unknown segment {end!r}"
                    )
            root_a, root_b = find(bridge.a), find(bridge.b)
            if root_a == root_b:
                raise ValueError(
                    f"bridge {bridge.link_id!r} creates a cycle; "
                    "the bridge graph must be a tree"
                )
            parent[root_a] = root_b
        known_links = set(link_ids)
        for fault in self.faults:
            if fault.link_id not in known_links:
                raise ValueError(
                    f"fault on unknown link {fault.link_id!r} "
                    f"(have: {sorted(known_links)})"
                )

    def bridges_of(self, segment: str) -> list:
        """Bridges touching ``segment``, in spec order."""
        return [
            bridge
            for bridge in self.bridges
            if segment in (bridge.a, bridge.b)
        ]

    def via_indices(self, segment: str, bridge: BridgeSpec) -> frozenset:
        """Segment indices reachable from ``segment`` through ``bridge``
        — the forwarding set for that bridge endpoint.

        The graph is a tree (validated), so this is simply the far-side
        component when the bridge's edge is removed.
        """
        start = bridge.other(segment)
        reachable = {start}
        frontier = [start]
        while frontier:
            here = frontier.pop()
            for other in self.bridges:
                if other.link_id == bridge.link_id:
                    continue
                if here not in (other.a, other.b):
                    continue
                peer = other.other(here)
                if peer not in reachable:
                    reachable.add(peer)
                    frontier.append(peer)
        return frozenset(self.index_of(name) for name in reachable)


# ---------------------------------------------------------------------------
# bridge endpoints
# ---------------------------------------------------------------------------


class BridgeEndpoint:
    """One side of a bridge: a promiscuous tap on its segment.

    Forwarding is *capture here, retransmit there*: frames whose
    destination routes through this bridge (or broadcasts, which flood
    the tree) are recorded as :class:`~repro.net.medium.EgressFrame` on
    the local segment's egress queue, stamped ``now + delay``.  The
    shard runtime ships them to whoever owns the adjacent segment; the
    far endpoint retransmits them there.  The endpoint never forwards
    frames it transmitted itself (the segment skips the sender on
    delivery), so the tree topology makes flooding terminate.
    """

    def __init__(
        self,
        bridge: BridgeSpec,
        *,
        own_segment: str,
        own_index: int,
        peer_segment: str,
        via: frozenset,
        address: bytes,
        link: LinkSpec,
        outages: tuple = (),
    ) -> None:
        self.bridge = bridge
        self.link_id = bridge.link_id
        self.delay = bridge.delay
        self.own_segment = own_segment
        self.own_index = own_index
        self.peer_segment = peer_segment
        self.via = via
        self.address = address
        self.link = link
        #: sorted ``(start, end)`` outages for this endpoint's own
        #: crossing direction (from the topology's fault schedule)
        self.outages = tuple(outages)
        self.segment = None  # set by EthernetSegment.attach
        self.frames_forwarded = 0
        self.frames_ignored = 0
        self.frames_dropped_link_down = 0
        #: frames injected *into* this segment through this endpoint
        #: (bumped by the shard runtime; the partition watchdog's signal)
        self.frames_ingress = 0
        #: every crossing this endpoint captured, as
        #: ``(link_id, seq, captured_at, deliver_at, src, dst)`` — the
        #: stitched-trace flow records.  Keyed ``(link_id, seq)`` they
        #: identify one frame's hop between shards; the capture side
        #: alone carries both endpoints and both instants, so the
        #: delivery side records nothing.  Always collected: the data
        #: is sim-deterministic and lives outside the run digest.
        self.flows: list[tuple] = []
        self._seq = 0

    def link_down_at(self, t: float) -> bool:
        """Is this endpoint's crossing inside a scheduled outage at ``t``?"""
        return bool(self.outages) and interval_covers(self.outages, t)

    def receive(self, frame: bytes) -> None:
        """Frame seen on the local cable — forward it or ignore it."""
        destination = self.link.destination_of(frame)
        if destination != self.link.broadcast:
            target = segment_index_of(destination)
            if target is None or target == self.own_index or target not in self.via:
                self.frames_ignored += 1
                return
        now = self.segment.scheduler.now
        deliver_at = now + self.delay
        # The fault schedule is static data, so "in flight when the
        # link dropped" is decidable at capture: a frame is carried only
        # if the link is up at both the capture and delivery instants.
        if self.link_down_at(now) or self.link_down_at(deliver_at):
            self.frames_dropped_link_down += 1
            self.segment.note_wire_fate(Primitive.DROP_LINK_DOWN)
            return
        self._seq += 1
        self.frames_forwarded += 1
        self.flows.append(
            (
                self.link_id,
                self._seq,
                now,
                deliver_at,
                self.own_segment,
                self.peer_segment,
            )
        )
        self.segment.push_egress(
            EgressFrame(
                deliver_at=deliver_at,
                dst_segment=self.peer_segment,
                src_segment=self.own_segment,
                link_id=self.link_id,
                seq=self._seq,
                frame=frame,
            )
        )

    def __repr__(self) -> str:
        return (
            f"BridgeEndpoint({self.link_id} @ {self.own_segment} -> "
            f"{self.peer_segment}, forwarded={self.frames_forwarded})"
        )


# ---------------------------------------------------------------------------
# building one segment
# ---------------------------------------------------------------------------


class SegmentContext:
    """What a segment builder gets to work with.

    Wraps the segment's private :class:`World` with topology-aware host
    creation (names prefixed ``segment:``, addresses carrying the
    segment prefix) plus the derived-seed namespace and a *report* hook
    for shipping scenario metrics out of a shard subprocess.
    """

    def __init__(self, runtime: "SegmentRuntime") -> None:
        self._runtime = runtime
        self.world = runtime.world
        self.topology = runtime.topology
        self.name = runtime.spec.name
        self.index = runtime.index
        self._next_station = 1
        self._reports: dict[str, Callable[[], Any]] = {}

    def host(self, name: str, *, station: int | None = None, **kwargs):
        """Add a host to this segment.

        The world-visible name is ``{segment}:{name}`` (host names must
        be disjoint across segments for stats/ledger merging) and the
        address encodes the segment prefix.  Stations allocate from 1
        upward unless given explicitly.
        """
        if station is None:
            station = self._next_station
        if station >= BRIDGE_STATION_BASE:
            raise ValueError(
                f"stations >= {BRIDGE_STATION_BASE:#x} are reserved for bridges"
            )
        self._next_station = max(self._next_station, station + 1)
        address = station_address(self.index, station, self.world.link)
        return self.world.host(f"{self.name}:{name}", address, **kwargs)

    def address_of(self, segment: str, station: int = 1) -> bytes:
        """The address of ``station`` on another segment — how builders
        aim cross-segment traffic without holding the other world."""
        return station_address(
            self.topology.index_of(segment), station, self.world.link
        )

    def seed_for(self, *path) -> int:
        """A child seed under this segment's namespace (partition- and
        ``PYTHONHASHSEED``-independent)."""
        return derive_seed(self.topology.seed, "segment", self.name, *path)

    def rng(self, *path):
        import random

        return random.Random(self.seed_for(*path))

    def report(self, key: str, fn: Callable[[], Any]) -> None:
        """Register a zero-argument callable whose (picklable) result is
        collected into the segment's report at the end of the run."""
        self._reports[key] = fn

    def collect_reports(self) -> dict[str, Any]:
        return {key: fn() for key, fn in self._reports.items()}


@dataclass
class SegmentReport:
    """One segment's collected results — plain picklable data.

    Shards ship these back over their pipes; the orchestrator merges
    them (in spec order, for determinism) into the whole-topology view.
    """

    name: str
    stats: dict[str, KernelStats]
    ledger: Ledger | None
    telemetry: TelemetrySnapshot | None
    report: dict
    wire: dict
    events_fired: int
    now: float
    #: bridge-crossing records from every endpoint (capture order);
    #: feeds the stitched trace's flow events, outside the digest
    flows: list = field(default_factory=list)
    #: per-segment span-latency histogram (None without a ledger);
    #: merging these across shards equals histogramming the merged
    #: ledger — the bounded-memory percentile path
    span_hist: object = None


class SegmentRuntime:
    """One live segment: its world, bridge endpoints, and context.

    Construction is identical no matter which process runs it — that is
    the whole point.  Bridge endpoints attach before builder hosts (in
    spec order) so NIC delivery order, and therefore event sequence
    numbers, are partition-independent.
    """

    def __init__(self, topology: TopologySpec, index: int) -> None:
        self.topology = topology
        self.index = index
        self.spec = topology.segments[index]
        name = self.spec.name
        self.world = World(
            seed=derive_seed(topology.seed, "segment", name),
            ledger=topology.ledger,
        )
        self.world.segment.wire_label = f"wire:{name}"
        if topology.telemetry:
            kwargs = {}
            if topology.telemetry_interval is not None:
                kwargs["interval"] = topology.telemetry_interval
            self.world.enable_telemetry(**kwargs)
        self.endpoints: dict[str, BridgeEndpoint] = {}
        for bridge in topology.bridges_of(name):
            station = BRIDGE_STATION_BASE + len(self.endpoints)
            direction = (
                DIRECTION_A_TO_B if name == bridge.a else DIRECTION_B_TO_A
            )
            endpoint = BridgeEndpoint(
                bridge,
                own_segment=name,
                own_index=index,
                peer_segment=bridge.other(name),
                via=topology.via_indices(name, bridge),
                address=station_address(index, station, self.world.link),
                link=self.world.link,
                outages=intervals_for(topology.faults, bridge.link_id, direction),
            )
            self.world.segment.attach(endpoint)
            self.endpoints[bridge.link_id] = endpoint
        if self.world.telemetry is not None and self.endpoints:
            # Bridge gauges live under a per-segment pseudo-host (so
            # they merge disjointly across shards) and feed the
            # cross-segment partition watchdog.
            pseudo = f"segment:{name}"
            for link_id, endpoint in self.endpoints.items():
                self.world.telemetry.register_gauges(
                    pseudo,
                    f"bridge.{link_id}.",
                    {
                        "ingress": lambda e=endpoint: float(e.frames_ingress),
                        "forwarded": lambda e=endpoint: float(
                            e.frames_forwarded
                        ),
                        "dropped_link_down": lambda e=endpoint: float(
                            e.frames_dropped_link_down
                        ),
                    },
                    unit="frames",
                )
                self.world.telemetry.add_rule(
                    partition_watchdog(link_id), host=pseudo
                )
        self.context = SegmentContext(self)
        builder = resolve_builder(self.spec.builder)
        builder(self.context, **dict(self.spec.options))

    # -- the shard-side synchronization surface -------------------------

    def run_until(self, horizon: float) -> int:
        return self.world.scheduler.run_until(horizon)

    def run_to_quiescence(self) -> int:
        before = self.world.scheduler.events_fired
        self.world.run()
        return self.world.scheduler.events_fired - before

    def next_time(self) -> float | None:
        return self.world.scheduler.next_time()

    def drain_egress(self) -> list:
        return self.world.segment.drain_egress()

    def inject(self, records: list) -> None:
        """Schedule inbound bridged frames for retransmission here.

        Records sort by their canonical key before scheduling, so the
        scheduler's sequence-number tie-break sees the same order no
        matter which shards produced them — the linchpin of bitwise
        partition-independence.
        """
        if not records:
            return
        scheduler = self.world.scheduler
        segment = self.world.segment
        for record in sorted(records, key=lambda r: r.sort_key):
            endpoint = self.endpoints[record.link_id]
            endpoint.frames_ingress += 1
            scheduler.schedule_at(
                record.deliver_at, segment.transmit, endpoint, record.frame
            )
        if self.world.telemetry is not None:
            self.world.telemetry.resume()

    # -- collection -----------------------------------------------------

    def collect(self) -> SegmentReport:
        from .obsplane import span_latency_histogram

        world = self.world
        segment = world.segment
        return SegmentReport(
            name=self.spec.name,
            stats={
                host.name: host.kernel.stats.snapshot() for host in world.hosts
            },
            ledger=world.ledger,
            telemetry=(
                world.telemetry.export() if world.telemetry is not None else None
            ),
            report=self.context.collect_reports(),
            wire={
                "frames_carried": segment.frames_carried,
                "frames_lost": segment.frames_lost,
                "bytes_carried": segment.bytes_carried,
                "frames_forwarded": sum(
                    endpoint.frames_forwarded
                    for endpoint in self.endpoints.values()
                ),
                "frames_ingress": sum(
                    endpoint.frames_ingress
                    for endpoint in self.endpoints.values()
                ),
                "frames_dropped_link_down": sum(
                    endpoint.frames_dropped_link_down
                    for endpoint in self.endpoints.values()
                ),
            },
            events_fired=world.scheduler.events_fired,
            now=world.scheduler.now,
            flows=[
                record
                for endpoint in self.endpoints.values()
                for record in endpoint.flows
            ],
            span_hist=(
                span_latency_histogram(world.ledger)
                if world.ledger is not None
                else None
            ),
        )
