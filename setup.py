"""Legacy shim so editable installs work on environments without the
``wheel`` package (modern ``pip install -e .`` builds a wheel; this
environment is offline).  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
