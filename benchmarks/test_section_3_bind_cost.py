"""§3's bind-cost claim: "a new filter can be bound at any time, at a
cost comparable to that of receiving a packet; in practice, filters are
not replaced very often."

Measured: the CPU cost of a SETFILTER ioctl (validation + demux rebind)
next to the per-packet receive cost, plus the wall-clock bind cost of
each engine (the COMPILED engine pays Python compilation at bind time —
the section 7 trade the paper predicted: "at the cost of greatly
increased implementation complexity").
"""

import time

from repro.bench import Row, measure_receive_cost, record_rows, render_table
from repro.core.compiler import compile_expr, word
from repro.core.demux import Engine, PacketFilterDemux
from repro.core.ioctl import PFIoctl
from repro.core.port import Port
from repro.sim import Ioctl, Open, World


def simulated_bind_ms(binds: int = 20) -> float:
    world = World()
    host = world.host("h")
    host.install_packet_filter()

    def body():
        fd = yield Open("pf")
        program = compile_expr(word(6) == 0x0900)
        yield Ioctl(fd, PFIoctl.SETFILTER, program)
        start = world.now
        for index in range(binds):
            yield Ioctl(
                fd, PFIoctl.SETFILTER, compile_expr(word(6) == index)
            )
        return (world.now - start) / binds

    proc = host.spawn("p", body())
    world.run_until_done(proc)
    return proc.result * 1000.0


def wallclock_bind_us(engine: Engine, binds: int = 300) -> float:
    demux = PacketFilterDemux(engine=engine)
    programs = [
        compile_expr((word(6) == 0x0900) & (word(7) == index))
        for index in range(binds)
    ]
    start = time.perf_counter()
    for index, program in enumerate(programs):
        port = Port(index)
        port.bind_filter(program)
        demux.attach(port)
    return (time.perf_counter() - start) / binds * 1e6


def collect():
    return {
        "bind_ms": simulated_bind_ms(),
        "receive_ms": measure_receive_cost("kernel", 128, count=30),
        "wall_checked": wallclock_bind_us(Engine.CHECKED),
        "wall_compiled": wallclock_bind_us(Engine.COMPILED),
    }


def test_section_3_bind_cost(once, emit):
    measured = once(collect)
    rows = [
        Row("SETFILTER ioctl", 2.3, measured["bind_ms"], "ms"),
        Row("one packet received", 2.3, measured["receive_ms"], "ms"),
        Row(
            "bind/receive ratio", 1.0,
            measured["bind_ms"] / measured["receive_ms"], "x",
        ),
        Row(
            "wall-clock bind, checked", 20.0, measured["wall_checked"], "us",
        ),
        Row(
            "wall-clock bind, compiled", 200.0,
            measured["wall_compiled"], "us",
        ),
    ]
    emit(render_table(
        "Section 3: filter binding cost "
        "('paper' = the comparable-to-a-receive claim; wall-clock rows "
        "are this machine's)",
        rows,
    ))
    record_rows(
        "section-3-bind-cost",
        rows,
        notes="JIT binding costs ~10x a plain bind in wall-clock — the "
        "section 7 complexity trade, affordable because 'filters are "
        "not replaced very often'.",
    )

    # "Comparable to the cost of receiving a packet": same magnitude.
    ratio = measured["bind_ms"] / measured["receive_ms"]
    assert 0.3 <= ratio <= 3.0
    # Compiled binds cost more than checked binds (they do more work).
    assert measured["wall_compiled"] > measured["wall_checked"]
