"""Demultiplexer throughput per engine, in real packets per second.

The engine ladder the repo has grown — checked interpreter,
prevalidated fast path, compiled closures, and the fused filter-set
engine with its flow cache — measured on the wall clock with 1 and 32
bound filters.  The acceptance bar: the fused engine with the flow
cache must demultiplex at least 3x the checked interpreter's rate on
the 32-filter workload.  Every row lands in ``bench_results.json``
(paper = 0.0: the paper predates this kind of engine comparison).
"""

from repro.bench import Row, record_rows, render_table
from repro.bench.scenarios import measure_demux_throughput

ENGINES = ("checked", "prevalidated", "compiled", "fused", "ir")
FILTER_COUNTS = (1, 32)
MIN_SECONDS = 0.15
BEST_OF = 3
"""Measurement rounds.  Every configuration is measured once per round
— round-robin, not back-to-back — and keeps its best rate, so all
configurations sample the same host-load regimes and a transient spike
cannot invert the cross-engine assertions."""


def collect() -> dict:
    configs: list[tuple[tuple[str, int], str, dict]] = []
    for engine in ENGINES:
        for filters in FILTER_COUNTS:
            configs.append(((engine, filters), engine, {}))
    for filters in FILTER_COUNTS:
        configs.append(
            (("fused+cache", filters), "fused", {"flow_cache": True})
        )
        configs.append((("ir+batch", filters), "ir", {"batch": 64}))

    results: dict[tuple[str, int], float] = {}
    for _ in range(BEST_OF):
        for key, engine, kwargs in configs:
            rate = measure_demux_throughput(
                engine,
                filters=key[1],
                min_seconds=MIN_SECONDS,
                **kwargs,
            )
            if rate > results.get(key, 0.0):
                results[key] = rate
    return results


def test_perf_demux_throughput(once, emit):
    results = once(collect)

    rows = [
        Row(f"{engine}, {filters} filters", 0.0, pps, "pkts/sec")
        for (engine, filters), pps in results.items()
    ]
    emit(render_table(
        "Demux throughput by engine (wall-clock; no paper analogue)",
        rows,
    ))
    record_rows(
        "perf-demux-throughput",
        rows,
        notes="Wall-clock packets/sec through PacketFilterDemux.deliver "
        "on the benchmark host; filter shape "
        "(word 6 == ethertype) & (word 7 == index), uniform traffic.",
    )

    # The ladder must actually be a ladder, at both filter counts.
    for filters in FILTER_COUNTS:
        checked = results[("checked", filters)]
        assert results[("compiled", filters)] > checked
        assert results[("fused", filters)] > checked
    # Acceptance: fused + flow cache >= 3x checked on 32 filters.
    assert results[("fused+cache", 32)] >= 3.0 * results[("checked", 32)]
    # Fused dispatch makes the per-packet cost roughly independent of
    # the number of bound filters; the linear engines degrade ~16x.
    assert (
        results[("fused", 32)]
        > 0.5 * results[("fused", 1)]
    )
    # The IR engine's specialized dispatch must at least keep up with
    # the fused engine, and batch delivery must beat its own scalar
    # path on the 32-filter workload (the batch-at-a-time win).
    assert results[("ir", 32)] > 0.8 * results[("fused", 32)]
    assert results[("ir+batch", 32)] > results[("ir", 32)]
