"""Table 6-7: Telnet output rate — display-limited, BSP ~ TCP.

Paper:

    Telnet protocol   Network      Output rate
    Pup/BSP           10 Mbit/s    1635 chars/sec   (3350-cps workstation)
    IP/TCP            10 Mbit/s    1757 chars/sec
    Pup/BSP           3 Mbit/s*    878 chars/sec    (9600-baud terminal)
    IP/TCP            3 Mbit/s*    933 chars/sec

"These output rates are clearly limited by the display terminal, not by
network performance."  (*The bottom rows' network column is irrelevant
to the result — the terminal is ~4x slower than the display path — so
we run all rows on the 10 Mb/s link.)
"""

from repro.bench import Row, measure_telnet, record_rows, render_table
from repro.sim.display import TERMINAL_9600_CPS, WORKSTATION_CPS


def collect():
    return {
        "bsp_ws": measure_telnet(
            "bsp", WORKSTATION_CPS, display_consumes_cpu=True
        ),
        "tcp_ws": measure_telnet(
            "tcp", WORKSTATION_CPS, display_consumes_cpu=True
        ),
        "bsp_term": measure_telnet(
            "bsp", TERMINAL_9600_CPS, display_consumes_cpu=False
        ),
        "tcp_term": measure_telnet(
            "tcp", TERMINAL_9600_CPS, display_consumes_cpu=False
        ),
    }


def test_table_6_7_telnet(once, emit):
    measured = once(collect)
    rows = [
        Row("Pup/BSP workstation", 1635, measured["bsp_ws"], "cps"),
        Row("IP/TCP workstation", 1757, measured["tcp_ws"], "cps"),
        Row("Pup/BSP 9600-baud", 878, measured["bsp_term"], "cps"),
        Row("IP/TCP 9600-baud", 933, measured["tcp_term"], "cps"),
    ]
    emit(render_table("Table 6-7: Telnet output rates", rows))
    record_rows("table-6-7", rows)

    # Every rate is display-limited: far below what bulk transfer shows
    # the transports can carry (38 KB/s ~ 39000 cps even for BSP).
    for value in measured.values():
        assert value < WORKSTATION_CPS
    # Terminal rows are bounded by the terminal and nearly equal.
    assert measured["bsp_term"] <= TERMINAL_9600_CPS
    assert measured["tcp_term"] <= TERMINAL_9600_CPS
    term_gap = measured["tcp_term"] / measured["bsp_term"]
    assert term_gap <= 1.35, "terminal rows nearly equal (paper: 6% apart)"
    # Workstation rows: TCP somewhat ahead but same regime.
    ws_gap = measured["tcp_ws"] / measured["bsp_ws"]
    assert 1.0 <= ws_gap <= 1.6
