"""Guard: the IR engine's throughput holds against its recorded baseline.

Mirrors the ledger-overhead guard's discipline for the filter
compiler: re-measure every ``ir``-engine row the throughput bench
recorded in ``bench_results.json`` (same machine, same job), best of
three runs per row, and fail if the geometric mean of the
measured/recorded ratios drops below 0.85x (the baseline keeps the
best rate the throughput bench ever saw, so the remeasured short
windows sit a little under it even when nothing changed).  A pass
regression — an
optimization pass that stops firing, a dispatch tree that degenerates
to a chain, a batch path that silently falls back to scalar — drags
every IR row down together; scheduler noise hits rows independently
and cancels in the mean.
"""

import json
import math
import os

import pytest

from repro.bench.scenarios import demux_label_kwargs, measure_demux_throughput
from repro.bench.tables import RESULTS_PATH

ALLOWED_REGRESSION = 0.15
MIN_SECONDS = 0.15


def recorded_ir_rates() -> dict[str, float]:
    if not os.path.exists(RESULTS_PATH):
        pytest.skip(f"no recorded baseline at {RESULTS_PATH}")
    with open(RESULTS_PATH) as handle:
        data = json.load(handle)
    experiment = data.get("perf-demux-throughput")
    if not experiment:
        pytest.skip("no perf-demux-throughput baseline recorded")
    rates = {
        row["label"]: row["measured"]
        for row in experiment["rows"]
        if row["label"].startswith("ir")
    }
    if not rates:
        pytest.skip("baseline predates the IR engine rows")
    return rates


def test_ir_demux_throughput_holds(emit):
    baseline = recorded_ir_rates()
    ratios = {}
    for label, recorded in baseline.items():
        kwargs = demux_label_kwargs(label)
        best = max(
            measure_demux_throughput(min_seconds=MIN_SECONDS, **kwargs)
            for _ in range(3)
        )
        ratios[label] = best / recorded
    emit("IR throughput vs recorded baseline:\n  " + "\n  ".join(
        f"{label}: {ratio:.2f}x" for label, ratio in ratios.items()
    ))
    geomean = math.exp(
        sum(math.log(r) for r in ratios.values()) / len(ratios)
    )
    emit(f"geometric mean: {geomean:.3f}x")
    assert geomean >= 1.0 - ALLOWED_REGRESSION, (
        f"IR engine regressed {1.0 - geomean:.0%} overall against the "
        f"recorded baseline (floor {ALLOWED_REGRESSION:.0%}); "
        f"per-row ratios: {ratios}"
    )
