"""Table 6-10: cost of interpreting packet filters, by filter length.

Paper (batching enabled, 128-byte packets):

    Filter length (instructions)   Elapsed time per packet
    0                              1.9 mSec
    1                              2.0 mSec
    9                              2.2 mSec
    21                             2.5 mSec

Plus the break-even analysis: even with 21-instruction filters, kernel
filtering beats user-level demultiplexing unless several such filters
run per packet — "the break-even point comes with twenty different
processes using the network" for short-circuit filters.
"""

import pytest

from repro.bench import (
    Row,
    measure_filter_cost,
    measure_receive_cost,
    record_rows,
    render_table,
    within_factor,
)

PAPER = {0: 1.9, 1: 2.0, 9: 2.2, 21: 2.5}


def collect():
    per_length = {n: measure_filter_cost(n) for n in PAPER}
    user_cost = measure_receive_cost("user", 128, batching=True, burst=6)
    return per_length, user_cost


def test_table_6_10_filter_cost(once, emit):
    per_length, user_cost = once(collect)
    rows = [
        Row(f"{n:2d} instructions", PAPER[n], per_length[n], "ms")
        for n in sorted(PAPER)
    ]
    rows.append(Row("user demux (ref)", 1.9, user_cost, "ms"))
    emit(render_table("Table 6-10: filter interpretation cost", rows))
    record_rows("table-6-10", rows)

    # Monotone in filter length, with a small per-instruction slope.
    lengths = sorted(PAPER)
    values = [per_length[n] for n in lengths]
    assert values == sorted(values)
    slope_ms = (per_length[21] - per_length[0]) / 21
    assert slope_ms == pytest.approx(0.0286, rel=0.5)
    # Break-even: the marginal cost of one long filter (~0.6 ms) is
    # far below the user-demux surcharge, so "the additional cost for
    # filter interpretation is less than the cost of user-level
    # demultiplexing if no more than three such long filters are
    # applied" — check that three long filters still win.
    long_filter_marginal = per_length[21] - per_length[0]
    user_surcharge = user_cost - per_length[0]
    assert 3 * long_filter_marginal <= max(user_surcharge, 1.0) + 1.0
    for n, value in per_length.items():
        assert within_factor(value, PAPER[n], 1.4), n
