"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark prints its paper-vs-measured table straight to the
terminal (bypassing pytest's capture) and records the rows to
``bench_results.json`` so ``python -m repro.bench.report`` can rebuild
EXPERIMENTS.md from an actual run.
"""

import sys

import pytest


@pytest.fixture
def emit():
    """Print to the real stdout, around pytest's capture."""

    def _emit(text: str) -> None:
        print(text, file=sys.__stdout__)
        sys.__stdout__.flush()

    return _emit


@pytest.fixture
def once(benchmark):
    """Run a scenario exactly once under pytest-benchmark timing.

    The scenarios are deterministic simulations; repeating them only
    repeats identical arithmetic, so one round is both honest and fast.
    """

    def _once(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _once
