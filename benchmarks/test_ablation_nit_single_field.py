"""Ablation: the packet filter vs Sun's single-field NIT (§5.4 footnote).

"[Sun's NIT] is similar to the packet filter but only allows filtering
on a single packet field!"  Two VMTP endpoints on one host need
(ethertype, kind, id) to separate their traffic; NIT's one field cannot
express that, so a NIT system must over-capture in the kernel and pay a
user-level demultiplexer to finish the job — per-packet costs this
ablation totals against the packet filter doing it all in the kernel.
"""

from repro.baselines.nit import NITDemux, SingleFieldPredicate
from repro.bench import Row, record_rows, render_table
from repro.core.compiler import compile_expr, word
from repro.core.demux import PacketFilterDemux
from repro.core.port import Port
from repro.core.words import pack_words
from repro.sim.costs import MICROVAX_II

CLIENTS = 4  # 4 clients x 2 kinds = 8 distinct endpoints


def traffic(packets=400):
    """VMTP-shaped words: type word 6, kind word 7, client id word 8."""
    out = []
    for index in range(packets):
        kind = 1 + (index % 2)           # REQUEST / RESPONSE
        client = index % CLIENTS
        out.append(pack_words([0, 0, 0, 0, 0, 0, 0x0555, kind << 8, client]))
    return out


def collect():
    costs = MICROVAX_II

    # Packet filter: one port per (client, kind) endpoint, exact
    # 3-field predicates.
    pf = PacketFilterDemux()
    port_id = 0
    for client in range(CLIENTS):
        for kind in (1, 2):
            port = Port(port_id, queue_limit=4096)
            port_id += 1
            port.bind_filter(
                compile_expr(
                    (word(8) == client).likely(0.05)
                    & (word(7).high_byte() == kind << 8).likely(0.5)
                    & (word(6) == 0x0555).likely(0.9),
                    priority=10,
                )
            )
            pf.attach(port)

    # NIT: the finest single field all endpoints share is the client id
    # word — but that conflates REQUEST and RESPONSE kinds, so each
    # port over-captures and user code must re-demultiplex (charged as
    # the figure 2-1 pipe surcharge per over-captured packet).
    nit = NITDemux()
    nit_ports = []
    for client in range(CLIENTS):
        port = Port(client, queue_limit=4096)
        nit.attach(port, SingleFieldPredicate(offset=8, value=client))
        nit_ports.append(port)

    packets = traffic()
    pf_instr = 0
    for packet in packets:
        report = pf.deliver(packet)
        pf_instr += report.instructions_executed
        assert len(report.accepted_by) == 1
    for packet in packets:
        assert nit.deliver(packet)

    # Kernel-side filtering cost per packet:
    pf_ms = (
        costs.filter_cost(pf.total_predicates_tested, pf_instr)
        / len(packets) * 1000.0
    )
    nit_ms = (
        nit.mean_predicates_tested * costs.filter_dispatch * 1000.0
    )
    # NIT's hidden cost: every port received BOTH kinds; half of every
    # port's packets belong to the other endpoint of that client and
    # must be re-demultiplexed in user space (2 switches + 2 copies +
    # 2 syscalls per misdelivered packet — §6.5.1's arithmetic).
    over_captured = 0.5
    user_fixup_ms = over_captured * (
        2 * costs.context_switch + 2 * costs.copy_short + 2 * costs.syscall
    ) * 1000.0
    return {
        "pf_ms": pf_ms,
        "nit_kernel_ms": nit_ms,
        "nit_total_ms": nit_ms + user_fixup_ms,
    }


def test_ablation_nit_single_field(once, emit):
    measured = once(collect)
    rows = [
        Row("packet filter, kernel", 0.5, measured["pf_ms"], "ms/pkt"),
        Row("NIT, kernel only", 0.2, measured["nit_kernel_ms"], "ms/pkt"),
        Row("NIT + user fixup", 1.3, measured["nit_total_ms"], "ms/pkt"),
    ]
    emit(render_table(
        "Ablation: single-field NIT vs the packet filter "
        "(8 VMTP endpoints; 'paper' = analytical expectation)",
        rows,
    ))
    record_rows(
        "ablation-nit",
        rows,
        notes="NIT's kernel pass is cheaper per packet (one field "
        "test), but its inexpressiveness forces user-level completion; "
        "totals favor the packet filter — Sun adopted it ('Sun expects "
        "to include our packet-filtering mechanism in a future release "
        "of NIT').",
    )

    # NIT's raw kernel pass is cheaper (it does less)...
    assert measured["nit_kernel_ms"] < measured["pf_ms"]
    # ...but the total, fixup included, favors the packet filter.
    assert measured["nit_total_ms"] > measured["pf_ms"]
