"""Table 6-5: effect of user-level demultiplexing on VMTP.

Paper:

    Demultiplexing in   minimal op    bulk rate
    Kernel              14.72 mSec    112 Kbytes/sec
    User process        18.08 mSec    25 Kbytes/sec

"User-level demultiplexing has a small cost (20% greater latency) for
short messages, but decreases bulk throughput by more than a factor of
four (much of this is attributable to the poor IPC facilities in
4.3BSD)."  Our pipes are better than 4.3BSD's, so we assert >2x on
bulk and record the measured factor.
"""

from repro.bench import (
    Row,
    measure_vmtp_bulk,
    measure_vmtp_minimal,
    record_rows,
    render_table,
    within_factor,
)


def collect():
    return {
        "direct_latency": measure_vmtp_minimal("pf"),
        "demux_latency": measure_vmtp_minimal("pf-userdemux"),
        "direct_bulk": measure_vmtp_bulk("pf"),
        "demux_bulk": measure_vmtp_bulk("pf-userdemux"),
    }


def test_table_6_5_user_demux(once, emit):
    measured = once(collect)
    rows = [
        Row("kernel demux latency", 14.72, measured["direct_latency"], "ms"),
        Row("user demux latency", 18.08, measured["demux_latency"], "ms"),
        Row("kernel demux bulk", 112, measured["direct_bulk"], "KB/s"),
        Row("user demux bulk", 25, measured["demux_bulk"], "KB/s"),
    ]
    emit(render_table("Table 6-5: user-level demultiplexing and VMTP", rows))
    record_rows(
        "table-6-5",
        rows,
        notes=(
            "Bulk slowdown measured at >2x rather than the paper's >4x: "
            "our simulated pipe is a fair byte-stream pipe, not "
            "4.3BSD's notoriously slow one (the paper itself blames "
            "'the poor IPC facilities in 4.3BSD' for much of the 4x)."
        ),
    )

    latency_penalty = measured["demux_latency"] / measured["direct_latency"]
    assert 1.05 <= latency_penalty <= 1.6, "small latency cost"
    bulk_factor = measured["direct_bulk"] / measured["demux_bulk"]
    assert bulk_factor >= 2.0, "large bulk cost"
    assert within_factor(measured["demux_latency"], 18.08, 1.4)
