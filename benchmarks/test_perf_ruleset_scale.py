"""Demultiplexer throughput at ACL scale: 100 and 1000 rules.

The paper's section 7 conjecture is about 32 filters; this benchmark
asks how each engine holds up when the bound set looks like a modern
5-tuple ACL (see :mod:`ruleset_gen`).  The linear engines degrade with
the rule count; the decision table prunes the scan; the IR engine's
specialized dispatch tree should make per-packet cost essentially
independent of the set size.  Every row lands in ``bench_results.json``
(paper = 0.0: no analogue).
"""

from repro.bench import Row, record_rows, render_table
from repro.bench.scenarios import measure_demux_throughput
from ruleset_gen import RULESET_SIZES, generate_ruleset, traffic_for

MIN_SECONDS = 0.15

CONFIGS = (
    # label -> measure_demux_throughput kwargs beyond the workload
    ("scan", {"engine": "compiled"}),
    ("table", {"engine": "compiled", "use_decision_table": True}),
    ("fused", {"engine": "fused"}),
    ("ir", {"engine": "ir"}),
    ("ir+batch", {"engine": "ir", "batch": 64}),
)


def collect() -> dict:
    results: dict[tuple[str, int], float] = {}
    for size in RULESET_SIZES:
        programs, tuples = generate_ruleset(size)
        packets = traffic_for(tuples)
        for label, kwargs in CONFIGS:
            results[(label, size)] = measure_demux_throughput(
                programs=programs,
                packets=packets,
                min_seconds=MIN_SECONDS,
                **kwargs,
            )
    return results


def test_perf_ruleset_scale(once, emit):
    results = once(collect)

    rows = [
        Row(f"{label}, {size} rules", 0.0, pps, "pkts/sec")
        for (label, size), pps in results.items()
    ]
    emit(render_table(
        "5-tuple ACL ruleset scale (wall-clock; no paper analogue)",
        rows,
    ))
    record_rows(
        "perf-ruleset-scale",
        rows,
        notes="Wall-clock packets/sec through PacketFilterDemux on "
        "synthetic 5-tuple ACL sets (ruleset_gen.py, seed 0), uniform "
        "matching traffic round-robining over the rules.",
    )

    for size in RULESET_SIZES:
        # Pruning the scan must help, and compiling the set must beat
        # interpreting the table's surviving candidates.
        assert results[("table", size)] > results[("scan", size)]
        assert results[("ir", size)] > results[("table", size)]
    # The specialized dispatch tree makes per-packet cost roughly
    # independent of rule count; a linear engine collapses instead.
    assert results[("ir", 1000)] > 0.4 * results[("ir", 100)]
    assert results[("scan", 1000)] < 0.5 * results[("scan", 100)]
