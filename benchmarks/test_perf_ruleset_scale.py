"""Demultiplexer throughput at ACL scale: 100, 1000 and 10000 rules.

The paper's section 7 conjecture is about 32 filters; this benchmark
asks how each engine holds up when the bound set looks like a modern
5-tuple ACL (see :mod:`ruleset_gen`), out to the 10k-rule firewall
scale the differential harness sweeps.  The linear engines degrade with
the rule count; the decision table prunes the scan; the IR engine's
specialized dispatch tree should make per-packet cost essentially
independent of the set size.  A second table measures the adversarial
set — every rule sharing one equality discriminant, distinguished only
by inequalities — where the tree *cannot* split and the whole-set
engines are expected to fall back to linear cost.  Every row lands in
``bench_results.json`` (paper = 0.0: no analogue).
"""

from repro.bench import Row, record_rows, render_table
from repro.bench.scenarios import measure_demux_throughput
from ruleset_gen import (
    RULESET_SIZES,
    generate_adversarial_ruleset,
    generate_ruleset,
    traffic_for,
)

MIN_SECONDS = 0.15

#: The adversarial sweep stops here: its whole point is linear-chain
#: behavior, and a 10k-rule linear chain measures minutes, not facts.
ADVERSARIAL_SIZES = (100, 1000)

CONFIGS = (
    # label -> measure_demux_throughput kwargs beyond the workload
    ("scan", {"engine": "compiled"}),
    ("table", {"engine": "compiled", "use_decision_table": True}),
    ("fused", {"engine": "fused"}),
    ("ir", {"engine": "ir"}),
    ("ir+batch", {"engine": "ir", "batch": 64}),
)


def collect() -> dict:
    results: dict[tuple[str, int], float] = {}
    for size in RULESET_SIZES:
        programs, tuples = generate_ruleset(size)
        # spread=True strides the round-robin across the whole set, so
        # the linear engines really do pay the average scan depth at
        # every size instead of only ever matching the first 256 ranks.
        packets = traffic_for(tuples, spread=True)
        for label, kwargs in CONFIGS:
            results[(label, size)] = measure_demux_throughput(
                programs=programs,
                packets=packets,
                min_seconds=MIN_SECONDS,
                **kwargs,
            )
    return results


def collect_adversarial() -> dict:
    results: dict[tuple[str, int], float] = {}
    for size in ADVERSARIAL_SIZES:
        programs, tuples = generate_adversarial_ruleset(size)
        packets = traffic_for(tuples, spread=True)
        for label, kwargs in CONFIGS:
            results[(label, size)] = measure_demux_throughput(
                programs=programs,
                packets=packets,
                min_seconds=MIN_SECONDS,
                **kwargs,
            )
    # One structured point at the same size, measured in the same
    # process, so the structured-vs-adversarial comparison does not
    # depend on a second test's timing run.
    programs, tuples = generate_ruleset(1000)
    results[("structured-ir", 1000)] = measure_demux_throughput(
        programs=programs,
        packets=traffic_for(tuples, spread=True),
        min_seconds=MIN_SECONDS,
        engine="ir",
    )
    return results


def test_perf_ruleset_scale(once, emit):
    results = once(collect)

    rows = [
        Row(f"{label}, {size} rules", 0.0, pps, "pkts/sec")
        for (label, size), pps in results.items()
    ]
    emit(render_table(
        "5-tuple ACL ruleset scale (wall-clock; no paper analogue)",
        rows,
    ))
    record_rows(
        "perf-ruleset-scale",
        rows,
        notes="Wall-clock packets/sec through PacketFilterDemux on "
        "synthetic 5-tuple ACL sets (ruleset_gen.py, seed 0), uniform "
        "matching traffic striding over the whole rule set.",
    )

    for size in RULESET_SIZES:
        # Pruning the scan must help, and compiling the set must beat
        # interpreting the table's surviving candidates.
        assert results[("table", size)] > results[("scan", size)]
        assert results[("ir", size)] > results[("table", size)]
    # The specialized dispatch tree makes per-packet cost roughly
    # independent of rule count; a linear engine collapses instead.
    assert results[("ir", 1000)] > 0.4 * results[("ir", 100)]
    assert results[("scan", 1000)] < 0.5 * results[("scan", 100)]
    assert results[("ir", 10_000)] > 0.2 * results[("ir", 100)]
    assert results[("scan", 10_000)] < 0.2 * results[("scan", 100)]


def test_perf_adversarial_ruleset(once, emit):
    adversarial = once(collect_adversarial)

    rows = [
        Row(f"{label}, {size} adversarial", 0.0, pps, "pkts/sec")
        for (label, size), pps in adversarial.items()
    ]
    emit(render_table(
        "Adversarial ruleset (shared discriminant; tree cannot split)",
        rows,
    ))
    record_rows(
        "perf-ruleset-adversarial",
        rows,
        notes="Same harness as perf-ruleset-scale, but every rule tests "
        "the same dst-port equality and differs only via source-port "
        "inequalities, so the decision table and dispatch tree collapse "
        "to one linear bucket.",
    )

    # The whole-set engines lose their scale-independence: against the
    # adversarial set the IR engine must behave like a linear scan,
    # collapsing with rule count instead of staying flat.
    assert adversarial[("ir", 1000)] < 0.5 * adversarial[("ir", 100)]
    # And the structured set at the same size must be far faster than
    # the adversarial one — the tree really was doing the work.
    assert adversarial[("structured-ir", 1000)] > 2.0 * adversarial[("ir", 1000)]
    # The decision table cannot prune what it cannot discriminate: at
    # best it tracks the plain scan (generous bound for timing noise).
    assert adversarial[("table", 1000)] < 2.0 * adversarial[("scan", 1000)]
