"""Receive livelock: interrupt collapse vs the polling goodput plateau.

Not a paper table — the acceptance experiment for the overload-control
subsystem.  A zero-cost blaster offers multiples of the receiver's
saturation rate; goodput is counted from ledger windows (delivered
packet spans whose syscall-return lands inside the measurement window).

The paper-style result this must show: the classic interrupt-driven
receive path (infinite interrupt capacity, no admission control)
collapses past saturation — the CPU timeline fills with receive
processing for packets that are dropped at the port queue anyway, and
reads complete ever later.  With the overload policy armed (CPU-gated
interrupts, budgeted polling, early shedding at admission, a
guaranteed user CPU share) goodput holds a flat plateau no matter the
offered load.

The assertions are plateau *shape* guards, not absolute numbers:
interrupt-mode goodput at >=4x saturation must fall below 50% of its
own peak, polling-mode must stay >=90% of its own peak.
"""

import pytest

from repro.bench import Row, record_rows, render_table, run_overload_storm

pytestmark = [pytest.mark.chaos, pytest.mark.overload]

MULTIPLIERS = (0.5, 1.0, 2.0, 4.0, 6.0)
STORM_KWARGS = dict(warmup=0.25, duration=1.0)


def _sweep(mode):
    return {
        mult: run_overload_storm(
            mode=mode, offered_multiplier=mult, **STORM_KWARGS
        )
        for mult in MULTIPLIERS
    }


def test_livelock_collapse_vs_polling_plateau(once, emit):
    def collect():
        return _sweep("interrupt"), _sweep("polling")

    interrupt, polling = once(collect)

    rows = [
        Row(
            f"{mult:g}x saturation",
            interrupt[mult]["goodput_pps"],
            polling[mult]["goodput_pps"],
            "pps",
        )
        for mult in MULTIPLIERS
    ]
    emit(
        render_table(
            "Goodput under a packet storm (baseline column = interrupt "
            "mode; measured = polling + early drop)",
            rows,
        )
    )
    record_rows(
        "overload-livelock",
        rows,
        notes=(
            "Offered load in multiples of the estimated per-packet "
            "receive saturation rate; goodput from ledger windows "
            "(delivered spans with syscall-return inside the 1 s "
            "measurement window after 0.25 s warmup).  Interrupt mode "
            "charges every arrival immediately and collapses past "
            "saturation; the overload policy (CPU-gated interrupts, "
            "budgeted polling, admission shedding, 25% guaranteed "
            "user CPU share) holds a flat plateau."
        ),
    )

    interrupt_peak = max(r["goodput_pps"] for r in interrupt.values())
    polling_peak = max(r["goodput_pps"] for r in polling.values())
    assert interrupt_peak > 0 and polling_peak > 0

    for mult in (4.0, 6.0):
        collapsed = interrupt[mult]["goodput_pps"]
        assert collapsed < 0.5 * interrupt_peak, (
            f"interrupt mode did not collapse at {mult}x: "
            f"{collapsed:.0f} pps vs peak {interrupt_peak:.0f} pps"
        )
        sustained = polling[mult]["goodput_pps"]
        assert sustained >= 0.9 * polling_peak, (
            f"polling mode lost its plateau at {mult}x: "
            f"{sustained:.0f} pps vs peak {polling_peak:.0f} pps"
        )

    # Overload was real and the machinery engaged: polling mode entered
    # poll mode and shed at admission (pre-filter, pre-copy), and the
    # interrupt mode's losses all happened *after* the receive work was
    # sunk (port-queue overflow) — the livelock signature.
    storm = polling[6.0]
    assert storm["nic_poll_mode_entries"] > 0
    assert storm["nic_frames_shed"] > 0
    assert storm["drops"].get("dropped_shed", 0) > 0
    assert interrupt[6.0]["drops"].get("drop_overflow", 0) > 0

    # The books still balance with the new drop primitives in play.
    for result in (interrupt[6.0], storm):
        host = result["receiver_host"]
        assert (
            result["ledger"].stats_view("receiver") == host.kernel.stats
        ), "ledger reconciliation broke under storm"

    # Every buffer went back to the pool once the world quiesced.
    assert storm["pool_audit"] == {}


def test_livelock_watchdog_fires_in_interrupt_mode_only(once):
    """The telemetry watchdog detects the collapse *as it happens*:
    during an unarmed interrupt-mode storm the ``receive_livelock``
    rule fires (drop-overflow rate exceeding delivery rate), with fire
    times inside the storm window; with the overload policy armed the
    same storm never trips it — polling converts post-work overflow
    drops into pre-work sheds."""

    def collect():
        return {
            mode: run_overload_storm(
                mode=mode, offered_multiplier=6.0, telemetry=True,
                **STORM_KWARGS,
            )
            for mode in ("interrupt", "polling")
        }

    results = once(collect)
    storm_end = STORM_KWARGS["warmup"] + STORM_KWARGS["duration"]

    livelock = results["interrupt"]["telemetry"].alerts_for(
        "receiver", rule="receive_livelock"
    )
    assert livelock, "interrupt-mode storm did not trip the watchdog"
    for alert in livelock:
        assert 0.02 <= alert.fired_at <= storm_end + 0.05, (
            f"livelock alert fired outside the storm window: "
            f"{alert.fired_at:.3f} s"
        )
        assert alert.values["pf.drop_overflow"] is not None

    armed = results["polling"]["telemetry"].alerts_for(
        "receiver", rule="receive_livelock"
    )
    assert armed == [], (
        f"overload policy armed but livelock watchdog still fired: {armed}"
    )


def test_killed_reader_leaks_no_pool_buffers(once):
    """Crash-safety under storm: kill the reading process mid-transfer.

    The dead process's port must detach, its queued buffers must return
    to the shared pool, and the books must still balance — a crashed
    consumer cannot leak buffers or wedge the demux.
    """

    def collect():
        return run_overload_storm(
            mode="polling",
            offered_multiplier=4.0,
            kill_reader_at=0.5,
            **STORM_KWARGS,
        )

    result = once(collect)
    reader = result["reader"]
    assert reader.done and reader.error is not None
    assert type(reader.error).__name__ == "ProcessKilled"
    assert result["pool_audit"] == {}, (
        f"killed reader leaked pool buffers: {result['pool_audit']}"
    )
    host = result["receiver_host"]
    assert result["ledger"].stats_view("receiver") == host.kernel.stats
