"""Figures 3-4 and 3-5: per-packet overheads without and with
received-packet batching.

Figure 3-4 draws one syscall + wakeup + crossing pair per delivered
packet; figure 3-5 shows a burst amortizing all of that over one read.
Measured here as events per packet on the receiving host while bursts
of six packets arrive.
"""

import pytest

from repro.bench import Row, count_receive_events, record_rows, render_table


def collect():
    return {
        False: count_receive_events("kernel", batching=False, burst=6),
        True: count_receive_events("kernel", batching=True, burst=6),
    }


def test_figure_3_4_3_5_batching_events(once, emit):
    events = once(collect)
    rows = [
        Row("no batch: syscalls/pkt", 1.0, events[False]["syscalls"]),
        Row("batch: syscalls/pkt", 1 / 6, events[True]["syscalls"]),
        Row("no batch: crossings/pkt", 2.0, events[False]["domain_crossings"]),
        Row("batch: crossings/pkt", 2 / 6, events[True]["domain_crossings"]),
        Row("no batch: copies/pkt", 1.0, events[False]["copies"]),
        Row("batch: copies/pkt", 1.0, events[True]["copies"]),
        Row("no batch: cpu ms/pkt", 2.3, events[False]["cpu_ms"]),
        Row("batch: cpu ms/pkt", 1.9, events[True]["cpu_ms"]),
    ]
    emit(render_table(
        "Figures 3-4/3-5: batching amortizes the per-packet events",
        rows,
    ))
    record_rows("figure-3-4-3-5", rows)

    # Batching divides syscalls and crossings by roughly the burst size.
    assert events[True]["syscalls"] <= events[False]["syscalls"] / 3
    assert (
        events[True]["domain_crossings"]
        <= events[False]["domain_crossings"] / 3
    )
    # Copies are per packet either way — batching cannot remove them.
    assert events[True]["copies"] == pytest.approx(
        events[False]["copies"], abs=0.1
    )
    # Net CPU per packet drops.
    assert events[True]["cpu_ms"] < events[False]["cpu_ms"]
