"""Table 6-1: cost of sending packets — packet filter vs (unchecksummed)
UDP, at 128 and 1500 bytes.

Paper (MicroVAX-II, Ultrix 1.2):

    Total packet size   via packet filter   via UDP
    128 bytes           1.9 mSec            3.1 mSec
    1500 bytes          3.6 mSec            4.9 mSec

Shape claims asserted: the PF send is cheaper than UDP at both sizes
(it "does not need to choose a route for the datagram or compute a
checksum"), the gap is roughly constant, and costs grow with size.
"""

from repro.bench import Row, measure_send_cost, record_rows, render_table
from repro.bench.tables import within_factor

PAPER = {
    ("pf", 128): 1.9,
    ("udp", 128): 3.1,
    ("pf", 1500): 3.6,
    ("udp", 1500): 4.9,
}


def collect():
    return {
        key: measure_send_cost(via, size)
        for key in PAPER
        for via, size in [key]
    }


def test_table_6_1_send_cost(once, emit):
    measured = once(collect)
    rows = [
        Row(f"{via} {size}B", PAPER[(via, size)], measured[(via, size)], "ms")
        for via, size in PAPER
    ]
    emit(render_table("Table 6-1: elapsed time per packet sent", rows))
    record_rows("table-6-1", rows)

    # The packet filter wins at both sizes.
    assert measured[("pf", 128)] < measured[("udp", 128)]
    assert measured[("pf", 1500)] < measured[("udp", 1500)]
    # The UDP-over-PF gap is the socket/route overhead: roughly constant.
    gap_small = measured[("udp", 128)] - measured[("pf", 128)]
    gap_large = measured[("udp", 1500)] - measured[("pf", 1500)]
    assert within_factor(gap_small, gap_large, 1.6)
    # Bigger packets cost more (the copy slope).
    assert measured[("pf", 1500)] > measured[("pf", 128)]
    # Absolutes land near the paper's milliseconds.
    for key, value in measured.items():
        assert within_factor(value, PAPER[key], 1.5), key
