"""Table 6-8: per-packet cost of user-level demultiplexing (no batching).

Paper:

    Packet size   kernel demux   user-process demux
    128 bytes     2.3 mSec       5.0 mSec
    1500 bytes    4.0 mSec       9.0 mSec

And the §6.5.1 analytical floor: a demultiplexing process adds at least
two context switches (0.8 ms) and two data transfers (1.0 ms + slope)
per packet.
"""

from repro.bench import (
    Row,
    measure_receive_cost,
    record_rows,
    render_table,
    within_factor,
)

PAPER = {
    ("kernel", 128): 2.3,
    ("user", 128): 5.0,
    ("kernel", 1500): 4.0,
    ("user", 1500): 9.0,
}


def collect():
    return {
        (demux, size): measure_receive_cost(demux, size)
        for demux, size in PAPER
    }


def test_table_6_8_demux_cost(once, emit):
    measured = once(collect)
    rows = [
        Row(f"{demux} demux, {size}B", PAPER[(demux, size)],
            measured[(demux, size)], "ms")
        for demux, size in PAPER
    ]
    emit(render_table("Table 6-8: per-packet receive cost", rows))
    record_rows("table-6-8", rows)

    # User demux costs roughly 2x at both sizes.
    for size in (128, 1500):
        ratio = measured[("user", size)] / measured[("kernel", size)]
        assert 1.6 <= ratio <= 2.8, size
    # The user-demux surcharge is at least the §6.5.1 floor (~1.8 ms
    # for short packets: 2 switches + 2 short copies).
    surcharge = measured[("user", 128)] - measured[("kernel", 128)]
    assert surcharge >= 1.5
    # Bigger packets widen the absolute gap (two extra copies of them).
    gap_large = measured[("user", 1500)] - measured[("kernel", 1500)]
    assert gap_large > surcharge
    for key, value in measured.items():
        assert within_factor(value, PAPER[key], 1.5), key
