"""Table 6-9: per-packet demux cost with received-packet batching.

Paper (bursts of four or more packets per batch):

    Packet size   kernel demux   user-process demux
    128 bytes     2.4 mSec       1.9 mSec
    1500 bytes    3.5 mSec       5.9 mSec

"Batching clearly reduces the penalty associated with user-level
demultiplexing, but the difference remains significant."  (The paper's
128-byte user-demux figure beating its kernel figure is an artifact of
its measurement noise; the claims asserted here are the stated ones —
batching shrinks the penalty, a gap remains at 1500 bytes.)
"""

from repro.bench import (
    Row,
    measure_receive_cost,
    record_rows,
    render_table,
    within_factor,
)

PAPER = {
    ("kernel", 128): 2.4,
    ("user", 128): 1.9,
    ("kernel", 1500): 3.5,
    ("user", 1500): 5.9,
}


def collect():
    batched = {
        (demux, size): measure_receive_cost(
            demux, size, batching=True, burst=6
        )
        for demux, size in PAPER
    }
    unbatched_user = {
        size: measure_receive_cost("user", size) for size in (128, 1500)
    }
    return batched, unbatched_user


def test_table_6_9_demux_batch(once, emit):
    batched, unbatched_user = once(collect)
    rows = [
        Row(f"{demux} demux, {size}B", PAPER[(demux, size)],
            batched[(demux, size)], "ms")
        for demux, size in PAPER
    ]
    emit(render_table("Table 6-9: receive cost with batching", rows))
    record_rows("table-6-9", rows)

    # Batching shrinks the user-level penalty at both sizes...
    for size in (128, 1500):
        assert batched[("user", size)] < unbatched_user[size], size
    # ...but a significant difference remains for large packets (the
    # extra copies cannot be amortized away).
    assert (
        batched[("user", 1500)] - batched[("kernel", 1500)] >= 1.0
    )
    for key, value in batched.items():
        assert within_factor(value, PAPER[key], 2.0), key
