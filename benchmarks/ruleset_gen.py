"""Synthetic 5-tuple ACL rule sets for the scale benchmarks.

The paper's workloads top out at a few dozen bound filters; modern
classifiers face hundreds to thousands of ACL-style rules.  This module
generates deterministic rule sets in the classic 5-tuple shape —
source address, destination address, protocol, source port,
destination port — laid out over the first seven 16-bit packet words:

====  ==================
word  field
====  ==================
0-1   source address
2-3   destination address
4     protocol
5     source port
6     destination port
====  ==================

Every rule tests all five fields for equality (destination ports are
distinct across the set, so the necessary-equality analysis has a
perfect discriminant, as real ACLs usually do), and
:func:`traffic_for` builds a round-robin matching workload so each
engine does full-accept work rather than rejecting early.
"""

from __future__ import annotations

import random

from repro.core.compiler import compile_expr, word
from repro.core.program import FilterProgram
from repro.core.words import pack_words

__all__ = ["RULESET_SIZES", "generate_ruleset", "traffic_for"]

RULESET_SIZES = (100, 1000)
"""The sizes the scale benchmark measures (the paper stops at 32)."""

_BASE_PORT = 1024


def generate_ruleset(
    size: int, seed: int = 0
) -> tuple[list[FilterProgram], list[tuple[int, ...]]]:
    """``size`` 5-tuple ACL filters plus the tuples they match.

    Deterministic for a given ``(size, seed)`` so recorded benchmark
    numbers are comparable across runs.
    """
    rng = random.Random(seed)
    programs: list[FilterProgram] = []
    tuples: list[tuple[int, ...]] = []
    for index in range(size):
        src_hi, src_lo = rng.randrange(1 << 16), rng.randrange(1 << 16)
        dst_hi, dst_lo = rng.randrange(1 << 16), rng.randrange(1 << 16)
        proto = rng.choice((6, 17))
        src_port = rng.randrange(1024, 1 << 16)
        dst_port = _BASE_PORT + index  # distinct: the discriminant
        expr = (
            (word(6) == dst_port)
            & (word(4) == proto)
            & (word(5) == src_port)
            & (word(0) == src_hi)
            & (word(1) == src_lo)
            & (word(2) == dst_hi)
            & (word(3) == dst_lo)
        )
        programs.append(compile_expr(expr, priority=10))
        tuples.append(
            (src_hi, src_lo, dst_hi, dst_lo, proto, src_port, dst_port)
        )
    return programs, tuples


def traffic_for(
    tuples: list[tuple[int, ...]], count: int = 256, seed: int = 1
) -> list[bytes]:
    """A uniform matching workload: round-robin over the rule set, with
    a random trailing payload word so packets are not bytewise equal."""
    rng = random.Random(seed)
    packets = []
    for n in range(count):
        src_hi, src_lo, dst_hi, dst_lo, proto, sport, dport = tuples[
            n % len(tuples)
        ]
        packets.append(
            pack_words(
                [src_hi, src_lo, dst_hi, dst_lo, proto, sport, dport,
                 rng.randrange(1 << 16)]
            )
        )
    return packets
