"""Synthetic 5-tuple ACL rule sets for the scale benchmarks.

The paper's workloads top out at a few dozen bound filters; modern
classifiers face hundreds to thousands of ACL-style rules.  This module
generates deterministic rule sets in the classic 5-tuple shape —
source address, destination address, protocol, source port,
destination port — laid out over the first seven 16-bit packet words:

====  ==================
word  field
====  ==================
0-1   source address
2-3   destination address
4     protocol
5     source port
6     destination port
====  ==================

Every rule tests all five fields for equality (destination ports are
distinct across the set, so the necessary-equality analysis has a
perfect discriminant, as real ACLs usually do), and
:func:`traffic_for` builds a round-robin matching workload so each
engine does full-accept work rather than rejecting early.

Two structured variants cover the shapes the uniform generator misses:

* :func:`generate_prefix_ruleset` — rules arrive in blocks sharing the
  whole address/protocol prefix (the CIDR-block shape of real ACLs), so
  cross-filter CSE has maximal sharing and the discriminant is the only
  word that varies within a block;
* :func:`generate_adversarial_ruleset` — every rule carries the *same*
  equality discriminant and differs only through inequality tests,
  which the necessary-equality analysis cannot see.  The decision table
  and the IR dispatch tree both degenerate to a single linear bucket —
  the worst case the section 7 conjecture has to survive.

All three return ``(programs, tuples)`` with tuples in
:func:`traffic_for`'s 7-word shape, so one traffic generator serves
every rule-set family.
"""

from __future__ import annotations

import random

from repro.core.compiler import compile_expr, word
from repro.core.program import FilterProgram
from repro.core.words import pack_words

__all__ = [
    "RULESET_SIZES",
    "ADVERSARIAL_DISCRIMINANT",
    "generate_ruleset",
    "generate_prefix_ruleset",
    "generate_adversarial_ruleset",
    "traffic_for",
]

RULESET_SIZES = (100, 1000, 10_000)
"""The sizes the scale benchmark measures (the paper stops at 32;
10k is the firewall-scale point the differential harness sweeps)."""

_BASE_PORT = 1024

ADVERSARIAL_DISCRIMINANT = 0x0BAD
"""The one destination-port value every adversarial rule tests for."""


def generate_ruleset(
    size: int, seed: int = 0
) -> tuple[list[FilterProgram], list[tuple[int, ...]]]:
    """``size`` 5-tuple ACL filters plus the tuples they match.

    Deterministic for a given ``(size, seed)`` so recorded benchmark
    numbers are comparable across runs.
    """
    rng = random.Random(seed)
    programs: list[FilterProgram] = []
    tuples: list[tuple[int, ...]] = []
    for index in range(size):
        src_hi, src_lo = rng.randrange(1 << 16), rng.randrange(1 << 16)
        dst_hi, dst_lo = rng.randrange(1 << 16), rng.randrange(1 << 16)
        proto = rng.choice((6, 17))
        src_port = rng.randrange(1024, 1 << 16)
        dst_port = _BASE_PORT + index  # distinct: the discriminant
        expr = (
            (word(6) == dst_port)
            & (word(4) == proto)
            & (word(5) == src_port)
            & (word(0) == src_hi)
            & (word(1) == src_lo)
            & (word(2) == dst_hi)
            & (word(3) == dst_lo)
        )
        programs.append(compile_expr(expr, priority=10))
        tuples.append(
            (src_hi, src_lo, dst_hi, dst_lo, proto, src_port, dst_port)
        )
    return programs, tuples


def generate_prefix_ruleset(
    size: int, seed: int = 0, block: int = 64
) -> tuple[list[FilterProgram], list[tuple[int, ...]]]:
    """Prefix-structured ACL: rules in blocks of ``block`` sharing the
    entire source/destination address and protocol — only the ports
    distinguish rules within a block, as when one CIDR pair carries
    many service rules.  The destination port stays globally distinct,
    so the dispatch tree still has a perfect discriminant; what changes
    is the sharing structure the CSE pass and the flow-cache key see.
    """
    rng = random.Random(seed)
    programs: list[FilterProgram] = []
    tuples: list[tuple[int, ...]] = []
    shared: tuple[int, ...] = ()
    for index in range(size):
        if index % block == 0:
            shared = (
                rng.randrange(1 << 16),
                rng.randrange(1 << 16),
                rng.randrange(1 << 16),
                rng.randrange(1 << 16),
                rng.choice((6, 17)),
            )
        src_hi, src_lo, dst_hi, dst_lo, proto = shared
        src_port = rng.randrange(1024, 1 << 16)
        dst_port = _BASE_PORT + index
        expr = (
            (word(6) == dst_port)
            & (word(4) == proto)
            & (word(5) == src_port)
            & (word(0) == src_hi)
            & (word(1) == src_lo)
            & (word(2) == dst_hi)
            & (word(3) == dst_lo)
        )
        programs.append(compile_expr(expr, priority=10))
        tuples.append(
            (src_hi, src_lo, dst_hi, dst_lo, proto, src_port, dst_port)
        )
    return programs, tuples


def generate_adversarial_ruleset(
    size: int, seed: int = 0
) -> tuple[list[FilterProgram], list[tuple[int, ...]]]:
    """A rule set the dispatch tree cannot discriminate.

    Every rule tests the *same* destination-port equality
    (:data:`ADVERSARIAL_DISCRIMINANT`) and then isolates its flow with
    a pair of inequalities on the source port — ``sport > i`` and
    ``sport <= i + 1``, i.e. exactly ``sport == i + 1``, but expressed
    in a form the necessary-equality analysis is blind to.  Every rule
    therefore lands in one table bucket / one tree leaf, and the
    whole-set engines fall back to the linear chain.  Rule ``i``
    matches tuples with source port ``i + 1``; matches stay disjoint,
    so first-match outcomes are unambiguous at any priority.
    """
    if size >= (1 << 16) - 1:
        raise ValueError("adversarial source ports must fit a 16-bit word")
    rng = random.Random(seed)
    programs: list[FilterProgram] = []
    tuples: list[tuple[int, ...]] = []
    for index in range(size):
        expr = (
            (word(6) == ADVERSARIAL_DISCRIMINANT)
            & (word(5) > index)
            & (word(5) <= index + 1)
        )
        programs.append(compile_expr(expr, priority=10))
        tuples.append(
            (
                rng.randrange(1 << 16),
                rng.randrange(1 << 16),
                rng.randrange(1 << 16),
                rng.randrange(1 << 16),
                rng.choice((6, 17)),
                index + 1,
                ADVERSARIAL_DISCRIMINANT,
            )
        )
    return programs, tuples


def traffic_for(
    tuples: list[tuple[int, ...]], count: int = 256, seed: int = 1,
    *, spread: bool = False,
) -> list[bytes]:
    """A uniform matching workload: round-robin over the rule set, with
    a random trailing payload word so packets are not bytewise equal.

    With ``spread=True`` the round-robin strides across the whole rule
    set instead of walking its head — essential when ``count`` is
    smaller than the set, or a "10k-rule" linear-scan measurement would
    in fact only ever visit the first ``count`` ranks."""
    rng = random.Random(seed)
    stride = max(1, len(tuples) // count) if spread else 1
    packets = []
    for n in range(count):
        src_hi, src_lo, dst_hi, dst_lo, proto, sport, dport = tuples[
            (n * stride) % len(tuples)
        ]
        packets.append(
            pack_words(
                [src_hi, src_lo, dst_hi, dst_lo, proto, sport, dport,
                 rng.randrange(1 << 16)]
            )
        )
    return packets
