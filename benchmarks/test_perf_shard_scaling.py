"""Shard scaling: aggregate events/sec of the flow storm vs shard count.

The conservative orchestrator's speedup claim, measured: the same
seeded flow-cache miss storm runs on 1, 2 and 4 worker processes, and
because the result is bitwise identical by construction (the difftest
oracle pins that), the only thing allowed to change is the wall clock.
Rows land in ``bench_results.json`` under ``shard_scaling_pps``.

Scaling assertions are gated on the host actually having cores to scale
onto: on a multi-core machine 2 shards must reach >= 1.6x and 4 shards
>= 2.5x the single-process event rate; on fewer cores the rates are
still recorded (the curve is the artifact) but the bar is not applied —
two processes on one core just interleave.

``REPRO_SHARD_QUICK=1`` shrinks the workload and drops the 4-shard
point for bounded CI runs.
"""

import os

from repro.bench import Row, record_rows, render_table
from repro.bench.scenarios import run_flow_storm

QUICK = os.environ.get("REPRO_SHARD_QUICK", "") not in ("", "0")

#: Enough offered load per segment that stepping dominates IPC.
WORKLOAD = dict(
    segments=4,
    duration=0.1 if QUICK else 0.4,
    flows=128,
    cache_size=32,
    offered_multiplier=2.0,
    seed=1987,
    ledger=False,   # measure the simulator, not span bookkeeping
)
SHARD_COUNTS = (1, 2) if QUICK else (1, 2, 4)
BEST_OF = 1 if QUICK else 3


def collect() -> dict[int, dict]:
    results: dict[int, dict] = {}
    for _ in range(BEST_OF):
        for shards in SHARD_COUNTS:
            outcome = run_flow_storm(shards=shards, **WORKLOAD)
            rate = outcome["events_fired"] / outcome["wall_seconds"]
            best = results.get(shards)
            if best is None or rate > best["events_per_sec"]:
                results[shards] = {
                    "events_per_sec": rate,
                    "sim_pps": outcome["sim_pps"],
                    "events_fired": outcome["events_fired"],
                    "frames_received": outcome["frames_received"],
                }
    return results


def test_perf_shard_scaling(once, emit):
    results = once(collect)

    # Partition-independence first: every shard count simulated the
    # exact same world, so the event and frame totals must agree.
    baseline = results[1]
    for shards, outcome in results.items():
        assert outcome["events_fired"] == baseline["events_fired"], shards
        assert outcome["frames_received"] == baseline["frames_received"]

    rows = [
        Row(
            f"{shards} shard(s)",
            0.0,
            outcome["events_per_sec"],
            "events/sec",
        )
        for shards, outcome in sorted(results.items())
    ]
    rows.append(Row(
        "offered load (simulated)", 0.0, baseline["sim_pps"], "pkts/sec"
    ))
    emit(render_table(
        "Shard scaling — flow storm events/sec (wall-clock)", rows
    ))
    cores = os.cpu_count() or 1
    record_rows(
        "shard_scaling_pps",
        rows,
        notes=(
            f"Aggregate wall-clock events/sec of the {WORKLOAD['segments']}"
            f"-segment flow-cache miss storm vs worker-process count "
            f"(quick={QUICK}, host cores={cores}). Results are bitwise "
            "identical across shard counts (tests/difftest/"
            "test_shard_oracle.py); only wall time may move."
        ),
    )

    # The speedup bar only binds where the hardware can express it.
    def speedup(shards: int) -> float:
        return results[shards]["events_per_sec"] / baseline["events_per_sec"]

    if 2 in results and cores >= 2:
        assert speedup(2) >= 1.6, f"2-shard speedup {speedup(2):.2f}x < 1.6x"
    if 4 in results and cores >= 4:
        assert speedup(4) >= 2.5, f"4-shard speedup {speedup(4):.2f}x < 2.5x"
