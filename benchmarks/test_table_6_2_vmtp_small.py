"""Table 6-2: VMTP minimal round-trip (read zero bytes from a file).

Paper (microVAX-II, 4.3BSD, 10 Mb/s Ethernet):

    VMTP implementation   elapsed time/operation
    Packet filter         14.7 mSec
    Unix kernel           7.44 mSec
    V kernel              7.32 mSec

"The penalty for user-level implementation is almost exactly a factor
of two."  (The V-kernel row is the same protocol in a different OS —
our kernel row stands in for both, as the paper itself notes they are
nearly identical.)
"""

from repro.bench import (
    Row,
    measure_vmtp_minimal,
    record_rows,
    render_table,
    within_factor,
)


def collect():
    return {
        "pf": measure_vmtp_minimal("pf"),
        "kernel": measure_vmtp_minimal("kernel"),
    }


def test_table_6_2_vmtp_small(once, emit):
    measured = once(collect)
    rows = [
        Row("Packet filter", 14.7, measured["pf"], "ms/op"),
        Row("Unix kernel", 7.44, measured["kernel"], "ms/op"),
        Row(
            "ratio (user/kernel)", 14.7 / 7.44,
            measured["pf"] / measured["kernel"], "x",
        ),
    ]
    emit(render_table("Table 6-2: VMTP minimal operation", rows))
    record_rows("table-6-2", rows)

    ratio = measured["pf"] / measured["kernel"]
    # "almost exactly a factor of two" — allow 1.5..3.
    assert 1.5 <= ratio <= 3.0
    assert within_factor(measured["pf"], 14.7, 1.4)
    assert within_factor(measured["kernel"], 7.44, 1.4)
