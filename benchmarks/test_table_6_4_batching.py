"""Table 6-4: effect of received-packet batching on VMTP bulk transfer.

Paper:

    Batching   Rate
    Yes        112 Kbytes/sec
    No         64 Kbytes/sec

"Batching improves throughput by about 75% over identical code that
reads just one packet per system call; the difference cannot be
entirely due to decreased system call overhead, but may reflect
reductions in context switching and dropped packets."

Our reproduction recovers the gap through exactly those mechanisms: the
non-batching port keeps the small default input queue, segment-group
bursts overflow it, and VMTP's selective retransmission pays timeouts
to patch the holes.
"""

from repro.bench import (
    Row,
    measure_vmtp_bulk,
    record_rows,
    render_table,
    within_factor,
)


def collect():
    return {
        True: measure_vmtp_bulk("pf", batching=True),
        False: measure_vmtp_bulk("pf", batching=False),
    }


def test_table_6_4_batching(once, emit):
    measured = once(collect)
    rows = [
        Row("Batching: yes", 112, measured[True], "KB/s"),
        Row("Batching: no", 64, measured[False], "KB/s"),
        Row("improvement", 1.75, measured[True] / measured[False], "x"),
    ]
    emit(render_table("Table 6-4: received-packet batching", rows))
    record_rows("table-6-4", rows)

    improvement = measured[True] / measured[False]
    assert improvement >= 1.4, "batching should win substantially"
    assert within_factor(measured[True], 112, 1.4)
    assert within_factor(measured[False], 64, 1.5)
