"""Table 6-3: VMTP bulk-data transfer (re-reading a cached file segment).

Paper:

    Implementation        Rate
    Packet filter VMTP    112 Kbytes/sec
    Unix kernel VMTP      336 Kbytes/sec
    V kernel VMTP         278 Kbytes/sec
    Unix kernel TCP       222 Kbytes/sec

"The penalty for user-level implementation is almost exactly a factor
of three" (we assert 2x..4x), with kernel TCP landing between the two
VMTPs (TCP checksums all data; VMTP does not).
"""

from repro.bench import (
    Row,
    measure_tcp_bulk,
    measure_vmtp_bulk,
    record_rows,
    render_table,
    within_factor,
)


def collect():
    return {
        "pf": measure_vmtp_bulk("pf"),
        "kernel": measure_vmtp_bulk("kernel"),
        "tcp": measure_tcp_bulk(),
    }


def test_table_6_3_vmtp_bulk(once, emit):
    measured = once(collect)
    rows = [
        Row("Packet filter VMTP", 112, measured["pf"], "KB/s"),
        Row("Unix kernel VMTP", 336, measured["kernel"], "KB/s"),
        Row("Unix kernel TCP", 222, measured["tcp"], "KB/s"),
        Row(
            "ratio (kernel/user)", 3.0,
            measured["kernel"] / measured["pf"], "x",
        ),
    ]
    emit(render_table("Table 6-3: VMTP bulk transfer", rows))
    record_rows(
        "table-6-3",
        rows,
        notes=(
            "The V-kernel row (278 KB/s) is not reproduced separately: "
            "it is the same protocol under a different OS."
        ),
    )

    # Ordering: kernel VMTP > kernel TCP > user-level VMTP.
    assert measured["kernel"] > measured["tcp"] > measured["pf"]
    # Kernel residency buys roughly 2-4x on bulk data.
    ratio = measured["kernel"] / measured["pf"]
    assert 2.0 <= ratio <= 4.0
    assert within_factor(measured["pf"], 112, 1.4)
    assert within_factor(measured["kernel"], 336, 1.4)
    assert within_factor(measured["tcp"], 222, 1.5)
