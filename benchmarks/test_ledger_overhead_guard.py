"""Guard: the charge ledger costs nothing when it is off.

The ledger refactor threaded attribution hooks through the demux hot
path (``deliver`` grew a ``packet_id`` parameter, the engines carry it
to the ports).  This bench re-measures ``measure_demux_throughput`` —
which runs with no kernel and no ledger, the pure hot path — and fails
if it regressed more than 10% against the rates recorded in
``bench_results.json`` by the last run of the throughput bench.

The comparison only means anything same-machine (CI runs the
throughput bench in the same job right before this guard), and wall
clocks are noisy even then: individual rows swing ±20% run-to-run on a
loaded host.  So each row takes the best of three runs and the verdict
is the geometric mean of the measured/recorded ratios across all rows
— an added branch in the hot path drags every row down together, while
scheduler noise hits rows independently and cancels in the mean.
"""

import json
import math
import os

import pytest

from repro.bench.scenarios import demux_label_kwargs, measure_demux_throughput
from repro.bench.tables import RESULTS_PATH

ALLOWED_REGRESSION = 0.10
MIN_SECONDS = 0.15


def recorded_rates() -> dict[str, float]:
    if not os.path.exists(RESULTS_PATH):
        pytest.skip(f"no recorded baseline at {RESULTS_PATH}")
    with open(RESULTS_PATH) as handle:
        data = json.load(handle)
    experiment = data.get("perf-demux-throughput")
    if not experiment:
        pytest.skip("no perf-demux-throughput baseline recorded")
    return {row["label"]: row["measured"] for row in experiment["rows"]}


def remeasure(label: str) -> float:
    kwargs = demux_label_kwargs(label)
    return max(
        measure_demux_throughput(min_seconds=MIN_SECONDS, **kwargs)
        for _ in range(3)
    )


def test_telemetry_disabled_is_free(emit):
    """Guard for the telemetry hooks, same contract as the ledger's.

    The sampler reaches components through ``publish_gauges``, which
    must stay one list append per *component* — never per packet — and
    an unarmed world must run the exact same simulation: identical
    KernelStats (bitwise, floats included) whether or not a sampler
    was watching.  The demux-throughput guard above already covers the
    pure hot path; this covers the kernel-level hooks under a real
    packet storm."""
    import time

    from repro.bench.scenarios import run_overload_storm

    kwargs = dict(
        mode="interrupt", offered_multiplier=4.0, warmup=0.1, duration=0.4
    )
    t0 = time.perf_counter()
    plain = run_overload_storm(**kwargs)
    off_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    observed = run_overload_storm(telemetry=True, **kwargs)
    on_wall = time.perf_counter() - t0
    emit(
        f"storm wall clock: telemetry off {off_wall:.2f}s, "
        f"armed {on_wall:.2f}s"
    )

    kernel = plain["receiver_host"].kernel
    assert kernel.telemetry is None
    # O(components): a storm of thousands of frames must not grow the
    # provider list — it holds one entry per NIC/device/port/pool.
    assert len(kernel._gauge_providers) <= 16, (
        f"gauge providers grew with traffic: {len(kernel._gauge_providers)}"
    )
    # Zero observer effect: armed telemetry changed nothing the
    # simulation itself can see.
    assert kernel.stats == observed["receiver_host"].kernel.stats
    assert plain["goodput_pps"] == observed["goodput_pps"]


def test_histogram_hot_path_stays_cheap(emit):
    """Guard for the observability plane's one per-sample primitive.

    ``LogHistogram.add`` runs once per closed span and once per grant
    reply — the only plane code on a per-event path.  It must stay a
    ``frexp`` + list increment: no log(), no allocation, no resize.
    Best-of-three like the throughput guard; the floor is set ~10x
    under a cold CPython's measured rate, so only an algorithmic
    regression (per-add allocation, accidental O(buckets) scan) trips
    it."""
    import time

    from repro.sim.telemetry import LogHistogram

    samples = [1e-6 * (1.01 ** (n % 1500)) for n in range(200_000)]
    best = 0.0
    for _ in range(3):
        hist = LogHistogram()
        t0 = time.perf_counter()
        for value in samples:
            hist.add(value)
        elapsed = time.perf_counter() - t0
        best = max(best, len(samples) / elapsed)
    emit(f"LogHistogram.add: best {best:,.0f} adds/s over 3 runs")
    assert hist.count == len(samples)
    assert best >= 2e5, (
        f"histogram hot path collapsed to {best:,.0f} adds/s "
        "(floor 200k/s)"
    )


def test_ledger_disabled_demux_throughput_holds(emit):
    baseline = recorded_rates()
    ratios = {
        label: remeasure(label) / recorded for label, recorded in
        baseline.items()
    }
    emit("ledger-off throughput vs recorded baseline:\n  " + "\n  ".join(
        f"{label}: {ratio:.2f}x" for label, ratio in ratios.items()
    ))
    geomean = math.exp(
        sum(math.log(r) for r in ratios.values()) / len(ratios)
    )
    emit(f"geometric mean: {geomean:.3f}x")
    assert geomean >= 1.0 - ALLOWED_REGRESSION, (
        f"demux hot path regressed {1.0 - geomean:.0%} overall with the "
        f"ledger disabled (floor {ALLOWED_REGRESSION:.0%}); "
        f"per-row ratios: {ratios}"
    )
