"""Recovery resilience: kill-a-shard acceptance and the checkpoint knob.

Not a paper table — the acceptance matrix for crash-recoverable
sharding.  A worker killed at a *seeded-random* window must come back
from its fork checkpoint and finish with a digest bitwise equal to the
undisturbed run, across shard counts and seeds.  The benchmark half
measures what the ``checkpoint_interval`` knob actually buys: the
longer the interval, the more journaled windows a revival replays and
the longer the stall (time-to-recover); interval 1 checkpoints every
window and replays almost nothing.  A last leg quantifies the partition
storm's goodput dip from the bridge-ingress telemetry series — the
number the partition watchdog's rate predicate is watching.
"""

import os

import pytest

from repro.bench import Row, record_rows, render_table
from repro.bench.scenarios import run_partition_storm
from repro.difftest.sharding import partition_storm_digest
from repro.sim.orchestrator import RecoveryConfig
from repro.sim.seeds import derive_rng

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.skipif(
        not hasattr(os, "fork"),
        reason="fork-based checkpoints need os.fork",
    ),
]

DURATION = 0.8
#: Windows this scenario/duration reliably exceeds (it runs ~400); the
#: randomized kill site stays below it so the hazard always fires.
KILL_WINDOW_RANGE = (10, 200)


@pytest.mark.parametrize("shards", [2, 3])
@pytest.mark.parametrize("seed", [0, 1987])
def test_randomized_kill_recovers_bitwise(shards, seed):
    """The acceptance matrix: seeded-random crash site, bitwise finish."""
    rng = derive_rng(seed, "bench", "kill-window", shards)
    kill_at = rng.randrange(*KILL_WINDOW_RANGE)
    victim = rng.randrange(shards)
    baseline = partition_storm_digest(
        segments=3, shards=shards, seed=seed, duration=DURATION
    )
    recovered = partition_storm_digest(
        segments=3,
        shards=shards,
        seed=seed,
        duration=DURATION,
        recovery=RecoveryConfig(checkpoint_interval=8, recv_timeout=30.0),
        hazards={victim: {"die_at_window": kill_at}},
    )
    assert recovered == baseline, (
        f"recovery changed the run: shard {victim} killed at window "
        f"{kill_at} ({shards} shards, seed {seed})"
    )


def test_partition_watchdog_fires_in_storm():
    """The watchdog half of the acceptance bar, at bench scale."""
    storm = run_partition_storm(segments=2, shards=2, seed=0, duration=1.2)
    assert storm["partition_alerts"], "partition watchdog silent"
    assert storm["backoff_alerts"], "RTO backoff storm silent"
    assert storm["livelock_alerts"] == []
    for alert in storm["partition_alerts"]:
        assert 0.2 <= alert["fired_at"] <= 0.6
        assert alert["cleared_at"] is not None and alert["cleared_at"] > 0.55


def test_time_to_recover_vs_checkpoint_interval(once, emit):
    """Sweep the knob: replayed windows and recovery stall per interval.

    ``None`` (no checkpointing) is the degenerate point — a fresh
    respawn replays the whole journal from window zero.
    """
    kill_at = 60

    def collect():
        results = {}
        for interval in (1, 4, 16, None):
            storm = run_partition_storm(
                segments=3,
                shards=2,
                seed=3,
                duration=DURATION,
                recovery=RecoveryConfig(
                    checkpoint_interval=interval, recv_timeout=30.0
                ),
                hazards={1: {"die_at_window": kill_at}},
            )
            (record,) = storm["restarts"]
            results[interval] = record
        return results

    results = once(collect)
    rows = []
    for interval, record in results.items():
        label = f"interval {interval}" if interval else "no checkpoints"
        rows.append(
            Row(
                label,
                record["replayed"],
                record["wall_seconds"] * 1000.0,
                "windows replayed / ms to recover",
            )
        )
        if interval is not None:
            # A checkpoint every k windows bounds replay to < k (plus
            # the in-flight window whose grant is resent).
            assert record["replayed"] <= interval + 1
            assert record["resumed_from"] > 0
        else:
            assert record["resumed_from"] == 0
            assert record["replayed"] == kill_at
    # More frequent checkpoints must never replay more.
    assert (
        results[1]["replayed"]
        <= results[4]["replayed"]
        <= results[16]["replayed"]
        <= results[None]["replayed"]
    )
    emit(
        render_table(
            "Time to recover vs checkpoint interval "
            "(baseline column = windows replayed; measured = stall ms)",
            rows,
        )
    )
    record_rows(
        "recovery-checkpoint-interval",
        rows,
        notes=(
            "Partition storm, 3 segments on 2 shards, shard 1 killed at "
            f"window {kill_at}.  Replay is deterministic, so the only "
            "cost of a sparse checkpoint is the stall: windows since "
            "the last fork must be re-stepped before the run proceeds."
        ),
    )


def test_partition_goodput_dip(emit):
    """Quantify the dip the watchdog sees: bridged goodput by phase."""
    storm = run_partition_storm(segments=2, shards=1, seed=0, duration=1.2)
    series = storm["result"].telemetry.series
    samples = series[("segment:lan0", "bridge.lan0~lan1.ingress")]["samples"]

    def goodput(t0: float, t1: float) -> float:
        inside = [(t, v) for t, v in samples if t0 <= t <= t1]
        if len(inside) < 2:
            return 0.0
        (ta, va), (tb, vb) = inside[0], inside[-1]
        return (vb - va) / (tb - ta) if tb > ta else 0.0

    before = goodput(0.05, 0.2)
    during = goodput(0.25, 0.5)
    after = goodput(0.95, 1.2)
    emit(
        f"\nbridged goodput (frames/s into lan0): "
        f"before={before:.1f} during-partition={during:.1f} "
        f"after-heal={after:.1f}"
    )
    assert before > 0.0
    assert during == 0.0, "goodput did not collapse during the partition"
    assert after > 0.0, "goodput did not recover after the heal"
    record_rows(
        "partition-goodput-dip",
        [
            Row("before partition", before, before, "frames/s"),
            Row("during partition", before, during, "frames/s"),
            Row("after heal", before, after, "frames/s"),
        ],
        notes=(
            "Cross-segment frame rate into lan0 (bridge ingress gauge), "
            "partition over [0.2, 0.55).  The partition watchdog fires "
            "on exactly this collapse while local pf.delivered stays "
            "healthy."
        ),
    )
