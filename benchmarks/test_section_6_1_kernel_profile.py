"""§6.1: kernel per-packet processing time, from a mixed-traffic profile.

Paper (VAX-11/780, 28-hour gprof profile):

* packet filter: 1.57 mSec per packet, 41% of it evaluating filter
  predicates, 6.3 predicates tested per average packet;
* cost estimate 0.8 mSec + 0.122 mSec x predicates;
* kernel IP input path: 1.77 mSec to the TCP/UDP layer, 0.49 mSec for
  the IP layer alone — "the kernel-resident IP layer is about three
  times faster than the packet filter at processing an average packet."
"""

from repro.bench import Row, kernel_profile, record_rows, render_table
from repro.bench.tables import within_factor


def test_section_6_1_kernel_profile(once, emit):
    profile = once(kernel_profile)
    rows = [
        Row("PF ms/packet", 1.57, profile.pf_ms_per_packet, "ms"),
        Row("filter fraction", 0.41, profile.pf_filter_fraction, ""),
        Row("predicates tested", 6.3, profile.mean_predicates_tested, ""),
        Row("IP->UDP input", 1.77, profile.ip_ms_per_packet, "ms"),
        Row("IP layer alone", 0.49, profile.ip_layer_only_ms, "ms"),
    ]
    emit(render_table("Section 6.1: kernel per-packet processing", rows))
    record_rows("section-6-1", rows)

    assert within_factor(profile.pf_ms_per_packet, 1.57, 1.3)
    assert 0.3 <= profile.pf_filter_fraction <= 0.55
    assert within_factor(profile.mean_predicates_tested, 6.3, 1.3)
    # "about three times faster": PF vs the IP layer alone.
    ratio = profile.pf_ms_per_packet / profile.ip_layer_only_ms
    assert 2.2 <= ratio <= 4.2
