"""Section 7 ablations, in real wall-clock time.

"All these tests can be performed ahead of time ... this might
significantly speed filter evaluation.  Even more speed could be gained
by compiling filters into machine code ... it might be possible to
compile the set of active filters into a decision table, which should
provide the best possible performance."

Measured here, on this machine, with this Python: the checked
interpreter, the prevalidated fast path, the compiled-closure filter,
and — for the whole-demultiplexer question — the linear scan against
the decision table over 32 active filters.
"""

import time

from repro.bench import Row, record_rows, render_table
from repro.core.compiler import compile_expr, word
from repro.core.demux import Engine, PacketFilterDemux
from repro.core.interpreter import evaluate
from repro.core.jit import compile_filter
from repro.core.paper_filters import figure_3_9_pup_socket_35
from repro.core.port import Port
from repro.core.words import pack_words

MATCHING = pack_words([0x0102, 2, 30, 0x0132, 0, 0, 0x0101, 0, 35])
MISSING = pack_words([0x0102, 2, 30, 0x0132, 0, 0, 0x0101, 0, 36])
RUNS = 4000


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def single_filter_modes() -> dict:
    program = figure_3_9_pup_socket_35()
    compiled = compile_filter(program)

    def checked():
        for _ in range(RUNS):
            evaluate(program, MATCHING, checked=True)
            evaluate(program, MISSING, checked=True)

    def prevalidated():
        for _ in range(RUNS):
            evaluate(program, MATCHING, checked=False)
            evaluate(program, MISSING, checked=False)

    def jit():
        for _ in range(RUNS):
            compiled.accepts(MATCHING)
            compiled.accepts(MISSING)

    return {
        "checked": _time(checked),
        "prevalidated": _time(prevalidated),
        "compiled": _time(jit),
    }


def demux_scan_vs_table() -> dict:
    def build(engine, use_table):
        demux = PacketFilterDemux(engine=engine, use_decision_table=use_table)
        for index in range(32):
            port = Port(index, queue_limit=1_000_000)
            port.bind_filter(
                compile_expr((word(6) == 0x0900) & (word(7) == index))
            )
            demux.attach(port)
        return demux

    packets = [
        pack_words([0, 0, 0, 0, 0, 0, 0x0900, index % 32])
        for index in range(64)
    ]
    configs = (
        # The section 7 conjecture, in three stages: loop over compiled
        # closures; prune the loop with the interpreted decision table;
        # compile the whole set *into* the table (the IR engine).
        ("linear scan", Engine.COMPILED, False),
        ("interpreted table", Engine.COMPILED, True),
        ("decision table", Engine.IR, False),
    )
    results = {}
    for label, engine, use_table in configs:
        demux = build(engine, use_table)
        # Warm up: the first delivery pays the one-time set compile
        # (decision table / IR dispatch); the ablation compares
        # steady-state per-packet cost, not bind-time amortization
        # (section-3-bind-cost measures that separately).
        for packet in packets:
            demux.deliver(packet)

        def run():
            for _ in range(RUNS // 40):
                for packet in packets:
                    demux.deliver(packet)

        results[label] = _time(run)
        results[f"{label} predicates"] = demux.mean_predicates_tested
    return results


def test_ablation_interpreter_modes(once, emit):
    def collect():
        return single_filter_modes(), demux_scan_vs_table()

    single, demux = once(collect)
    base = single["checked"]
    rows = [
        Row("checked interpreter", 1.0, 1.0, "(baseline)"),
        Row("prevalidated", 0.8, single["prevalidated"] / base, "rel time"),
        Row("compiled closure", 0.3, single["compiled"] / base, "rel time"),
        Row(
            "interpreted table vs scan", 0.6,
            demux["interpreted table"] / demux["linear scan"], "rel time",
        ),
        Row(
            "table vs scan (32 filters)", 0.2,
            demux["decision table"] / demux["linear scan"], "rel time",
        ),
        Row(
            "scan predicates/pkt", 16.5, demux["linear scan predicates"]
        ),
        Row(
            "table predicates/pkt", 1.0,
            demux["decision table predicates"],
        ),
    ]
    emit(render_table(
        "Section 7 ablations (wall-clock; 'paper' column = rough "
        "expectation, the paper gives no numbers here)",
        rows,
    ))
    record_rows(
        "ablation-section-7",
        rows,
        notes="Real wall-clock on the host running the benchmark; "
        "relative times are the meaningful quantity.",
    )

    # Each section 7 improvement actually improves things.
    assert single["prevalidated"] <= single["checked"] * 1.05
    assert single["compiled"] < single["prevalidated"]
    assert demux["interpreted table"] < demux["linear scan"]
    # Compiling the set into the table beats interpreting the table.
    assert demux["decision table"] < demux["interpreted table"]
    # The table examines ~1 filter where the scan examines ~half of 32.
    assert demux["decision table predicates"] <= 2.0
    assert demux["linear scan predicates"] >= 10.0
