"""Figures 3-8/3-9: the paper's example filters, and what short-circuit
evaluation buys.

Figure 3-9's design note: "The DstSocket field is checked before the
packet type field, since in most packets the DstSocket is likely not to
match and so the short-circuit operation will exit immediately."  On a
mismatch the program runs 2 instructions instead of figure 3-8's
unconditional 10 — measured here as interpreted instructions per packet
over a realistic traffic mix, plus the simulated per-packet cost both
ways.
"""

from repro.bench import Row, record_rows, render_table
from repro.core.interpreter import evaluate
from repro.core.paper_filters import (
    figure_3_8_pup_type_range,
    figure_3_9_pup_socket_35,
)
from repro.core.words import pack_words
from repro.sim.costs import MICROVAX_II


def traffic_mix():
    """95% of packets miss the socket test — the paper's 'most
    packets' premise."""
    packets = []
    for index in range(100):
        socket = 35 if index % 20 == 0 else 36 + index
        packets.append(
            pack_words(
                [0x0102, 2, 30, 0x0120, 0, 0, 0x0101,
                 (socket >> 16) & 0xFFFF, socket & 0xFFFF]
            )
        )
    return packets


def collect():
    fig38 = figure_3_8_pup_type_range()
    fig39 = figure_3_9_pup_socket_35()
    packets = traffic_mix()
    executed_38 = sum(
        evaluate(fig38, packet).instructions_executed for packet in packets
    )
    executed_39 = sum(
        evaluate(fig39, packet).instructions_executed for packet in packets
    )
    cost = MICROVAX_II.filter_instruction * 1000.0
    return {
        "per_packet_38": executed_38 / len(packets),
        "per_packet_39": executed_39 / len(packets),
        "ms_38": executed_38 / len(packets) * cost,
        "ms_39": executed_39 / len(packets) * cost,
    }


def test_figure_3_8_3_9_example_filters(once, emit):
    measured = once(collect)
    rows = [
        Row("fig 3-8 instrs/packet", 10.0, measured["per_packet_38"]),
        Row("fig 3-9 instrs/packet", 2.2, measured["per_packet_39"]),
        Row("fig 3-8 eval ms/packet", 0.29, measured["ms_38"], "ms"),
        Row("fig 3-9 eval ms/packet", 0.063, measured["ms_39"], "ms"),
    ]
    emit(render_table(
        "Figures 3-8/3-9: short-circuiting on a 95%-miss traffic mix",
        rows,
    ))
    record_rows(
        "figure-3-8-3-9",
        rows,
        notes="Paper columns are the analytical expectations implied by "
        "the figures (the figures list code, not measurements).",
    )

    # Figure 3-8 always runs all 10 instructions.
    assert measured["per_packet_38"] == 10.0
    # Figure 3-9 averages just over 2 on this mix.
    assert 2.0 <= measured["per_packet_39"] <= 3.0
    # The short-circuit filter is ~4x cheaper on average.
    assert measured["per_packet_38"] / measured["per_packet_39"] >= 3.5
