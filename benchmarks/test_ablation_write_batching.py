"""Ablation: write batching — the untried section 7 idea, tried.

"The existing read-batching mechanism clearly improves performance for
bulk data transfer; a write-batching option (to send several packets in
one system call) might also improve performance."

The paper never measured it; we can.  A sender pushes a fixed packet
count through a PF port, one frame per write versus whole bursts per
(vectored) write, and the per-packet send cost is compared.  The
saving is exactly one syscall amortized — real, but small next to the
copy and driver costs, which is presumably why it stayed future work.
"""

from repro.bench import Row, record_rows, render_table
from repro.bench.scenarios import _payload
from repro.core.ioctl import PFIoctl
from repro.sim import Ioctl, Open, World, Write


def send_cost(batch: int, packet_bytes: int = 128, count: int = 60) -> float:
    world = World()
    sender = world.host("sender")
    sink = world.host("sink")
    sender.install_packet_filter()
    sink.install_packet_filter()

    def body():
        fd = yield Open("pf")
        if batch > 1:
            yield Ioctl(fd, PFIoctl.SETWRITEBATCH, True)
        frame = _payload(sender, packet_bytes, sink.address)
        yield Write(fd, tuple([frame] * batch) if batch > 1 else frame)
        start = world.now
        sent = 0
        while sent < count:
            group = min(batch, count - sent)
            if group > 1:
                yield Write(fd, tuple([frame] * group))
            else:
                yield Write(fd, frame)
            sent += group
        return (world.now - start) / count

    proc = sender.spawn("sender", body())
    world.run_until_done(proc)
    return proc.result * 1000.0


def collect():
    return {batch: send_cost(batch) for batch in (1, 4, 8)}


def test_ablation_write_batching(once, emit):
    measured = once(collect)
    rows = [
        Row("1 frame/write", 1.9, measured[1], "ms/pkt"),
        Row("4 frames/write", 1.7, measured[4], "ms/pkt"),
        Row("8 frames/write", 1.67, measured[8], "ms/pkt"),
        Row("saving at 8/write", 0.12, measured[1] - measured[8], "ms/pkt"),
    ]
    emit(render_table(
        "Ablation: section 7's write batching, measured "
        "('paper' = syscall-amortization expectation; untested in 1987)",
        rows,
    ))
    record_rows(
        "ablation-write-batching",
        rows,
        notes="Confirms the paper's hedge: the improvement is real but "
        "modest — only the syscall amortizes; per-frame copies and "
        "driver work dominate the send path.",
    )

    # Batching helps, monotonically...
    assert measured[4] < measured[1]
    assert measured[8] <= measured[4]
    # ...by roughly one syscall spread over the batch, no more.
    saving = measured[1] - measured[8]
    assert 0.1 <= saving <= 0.5
