"""Figures 3-1/3-2/3-3: the packet filter coexists with kernel protocols.

Figure 3-3 shows both networking models on one kernel; §6 states the
performance half of the claim: "the packet filter coexists with
kernel-resident protocol implementations, without affecting their
performance."

Measured: kernel UDP receive cost on a host (a) with no packet filter,
(b) with the packet filter installed and busy ports bound, and (c) with
a copy-all monitor watching everything (``pf_sees_all``).  Only (c) may
cost anything — and that cost is the monitor's own, opt-in work.
"""

import pytest

from repro.bench import Row, record_rows, render_table
from repro.baselines.user_demux import catch_all_filter
from repro.core.ioctl import PFIoctl
from repro.kernelnet import KernelUDP, SockIoctl, link_stacks
from repro.sim import Ioctl, Open, Read, Sleep, World, Write


def udp_receive_cost(pf_mode: str, count: int = 40) -> float:
    """Receiver-host CPU ms per UDP datagram under each PF arrangement."""
    world = World()
    sender = world.host("sender")
    receiver = world.host("receiver")
    stack_a = sender.install_kernel_stack()
    stack_b = receiver.install_kernel_stack()
    link_stacks(stack_a, stack_b)
    KernelUDP(stack_a)
    KernelUDP(stack_b)

    if pf_mode != "absent":
        receiver.install_packet_filter()

        def pf_user():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, catch_all_filter(priority=50))
            if pf_mode == "monitor":
                yield Ioctl(fd, PFIoctl.SETCOPYALL, True)
                yield Ioctl(fd, PFIoctl.SETBATCH, True)
                yield Ioctl(fd, PFIoctl.SETQUEUELEN, 256)
            while True:
                yield Read(fd)

        receiver.spawn("pf-user", pf_user())
        if pf_mode == "monitor":
            receiver.kernel.pf_sees_all = True

    baseline = []

    def send_body():
        fd = yield Open("udp")
        yield Ioctl(fd, SockIoctl.CONNECT, (stack_b.ip_address, 53))
        yield Sleep(0.05)
        baseline.append(receiver.kernel.stats.snapshot())
        for _ in range(count):
            yield Write(fd, bytes(100))
            yield Sleep(0.012)

    def receive_body():
        fd = yield Open("udp")
        yield Ioctl(fd, SockIoctl.BIND, 53)
        received = 0
        while received < count:
            yield Read(fd)
            received += 1

    dest = receiver.spawn("dest", receive_body())
    sender.spawn("sender", send_body())
    world.run_until_done(dest)
    return receiver.kernel.stats.delta(baseline[0]).cpu_time / count * 1000.0


def collect():
    return {
        "absent": udp_receive_cost("absent"),
        "installed": udp_receive_cost("installed"),
        "monitor": udp_receive_cost("monitor"),
    }


def test_figure_3_1_3_3_coexistence(once, emit):
    measured = once(collect)
    rows = [
        Row("UDP recv, no PF", 1.0, measured["absent"] / measured["absent"]),
        Row(
            "UDP recv, PF installed", 1.0,
            measured["installed"] / measured["absent"],
        ),
        Row(
            "UDP recv, copy-all monitor", 1.5,
            measured["monitor"] / measured["absent"],
        ),
    ]
    emit(render_table(
        "Figures 3-1/3-3: kernel-protocol cost relative to a PF-free "
        "kernel (paper: installed = 1.0 exactly; monitor cost is "
        "opt-in and unquantified)",
        rows,
    ))
    record_rows(
        "figure-3-1-3-3",
        rows,
        notes="'The packet filter coexists with kernel-resident "
        "protocol implementations, without affecting their "
        "performance' — claimed packets never reach the filter unless "
        "a monitor asks for copies.",
    )

    # Installed-but-idle PF: zero effect on the kernel UDP path
    # (claimed packets are never submitted to the filter).
    assert measured["installed"] == pytest.approx(
        measured["absent"], rel=0.02
    )
    # A copy-all monitor costs something — but that is the monitor's
    # own work, not a tax on the monitored protocol's correctness.
    assert measured["monitor"] >= measured["absent"]
