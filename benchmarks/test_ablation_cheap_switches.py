"""Ablation: what if context switches were cheap? (§2's caveat)

"In systems where context-switching is inexpensive, the performance
advantage of kernel demultiplexing will be reduced, but the packet
filter may still be a good model for a user-level demultiplexer to
emulate."

Reproduced by sweeping the context-switch cost from the MicroVAX's
0.4 ms down to near-zero and measuring the user-demux/kernel-demux
cost ratio at each point.  The advantage shrinks — but never vanishes,
because the demultiplexing process's extra copies and syscalls remain.
"""

from repro.baselines.user_demux import UserDemuxSystem
from repro.bench import Row, record_rows, render_table
from repro.bench.scenarios import _payload, _test_filter
from repro.core.ioctl import PFIoctl
from repro.sim import Ioctl, Open, Read, Sleep, World, Write
from repro.sim.costs import MICROVAX_II
from dataclasses import replace


def receive_ratio(context_switch_ms: float, count: int = 40) -> float:
    """user-demux / kernel-demux CPU per packet at a given switch cost."""
    costs = replace(MICROVAX_II, context_switch=context_switch_ms * 1e-3)
    results = {}
    for demux in ("kernel", "user"):
        world = World(costs=costs)
        sender = world.host("sender")
        receiver = world.host("receiver")
        sender.install_packet_filter()
        receiver.install_packet_filter()
        baseline = []

        def send_body():
            fd = yield Open("pf")
            frame = _payload(sender, 128, receiver.address)
            yield Sleep(0.05)
            baseline.append(receiver.kernel.stats.snapshot())
            for _ in range(count):
                yield Write(fd, frame)
                yield Sleep(0.012)

        if demux == "kernel":

            def receive_body():
                fd = yield Open("pf")
                yield Ioctl(fd, PFIoctl.SETFILTER, _test_filter())
                yield Ioctl(fd, PFIoctl.SETQUEUELEN, 64)
                received = 0
                while received < count:
                    received += len((yield Read(fd)))

            dest = receiver.spawn("dest", receive_body())
        else:
            system = UserDemuxSystem(receiver, classify=lambda f: "dest")
            inbox = system.add_destination("dest")

            def dest_body():
                received = 0
                while received < count:
                    yield from inbox.read()
                    received += 1

            dest = receiver.spawn("dest", dest_body())
            system.register(inbox, dest)
            demux_proc = receiver.spawn("demuxd", system.run())
            system.attach(demux_proc)

        sender.spawn("sender", send_body())
        world.run_until_done(dest)
        results[demux] = receiver.kernel.stats.delta(baseline[0]).cpu_time

    return results["user"] / results["kernel"]


def collect():
    return {ms: receive_ratio(ms) for ms in (0.4, 0.2, 0.1, 0.0)}


def test_ablation_cheap_switches(once, emit):
    ratios = once(collect)
    rows = [
        Row(f"switch = {ms:.1f} ms", 2.0 if ms == 0.4 else 0.0, ratio, "x")
        for ms, ratio in ratios.items()
    ]
    emit(render_table(
        "Ablation: user/kernel demux cost ratio vs context-switch cost "
        "('paper' given only for the measured 0.4 ms point)",
        rows,
    ))
    record_rows(
        "ablation-cheap-switches",
        rows,
        notes="§2's caveat quantified: cheap switches shrink the "
        "kernel-demux advantage monotonically, but copies and syscalls "
        "keep it above 1x even at zero switch cost.",
    )

    values = [ratios[ms] for ms in (0.4, 0.2, 0.1, 0.0)]
    # Monotone: cheaper switches, smaller advantage.
    assert values == sorted(values, reverse=True)
    # But the advantage never disappears.
    assert values[-1] > 1.2
    # And at the MicroVAX's cost it is the familiar ~2x.
    assert 1.6 <= values[0] <= 2.6
