"""§6.5.3: the break-even between kernel filtering and user demultiplexing.

"It usually takes two or three filter instructions to test one packet
field; even with rather long filters (21 instructions) the additional
cost for filter interpretation is less than the cost of user-level
demultiplexing if no more than three such long filters are applied to
an incoming packet before one filter accepts it.  For filters using
short-circuit conditionals, the break-even point is closer to an
average of about ten filters before acceptance, which should occur when
more than twenty filters are active."

Reproduced directly: sweep the number of long filters applied before
acceptance and find where kernel filtering's marginal cost crosses the
measured user-demultiplexing surcharge.
"""

from repro.bench import (
    Row,
    measure_receive_cost,
    record_rows,
    render_table,
)
from repro.sim.costs import MICROVAX_II


def collect():
    # The measured user-level surcharge for short packets (table 6-8).
    kernel_base = measure_receive_cost("kernel", 128)
    user_cost = measure_receive_cost("user", 128)
    surcharge = user_cost - kernel_base

    # Marginal cost of applying one long (21-instruction) filter that
    # rejects, and of one short-circuit filter that rejects early
    # (2 instructions executed), from the calibrated model.
    costs = MICROVAX_II
    long_reject = (
        costs.filter_dispatch + 21 * costs.filter_instruction
    ) * 1000.0
    short_circuit_reject = (
        costs.filter_dispatch + 2 * costs.filter_instruction
    ) * 1000.0

    break_even_long = surcharge / long_reject
    break_even_short_circuit = surcharge / short_circuit_reject
    return {
        "surcharge": surcharge,
        "long_reject": long_reject,
        "sc_reject": short_circuit_reject,
        "break_even_long": break_even_long,
        "break_even_sc": break_even_short_circuit,
    }


def test_section_6_5_break_even(once, emit):
    measured = once(collect)
    rows = [
        Row("user-demux surcharge", 2.7, measured["surcharge"], "ms"),
        Row("21-instr filter reject", 0.64, measured["long_reject"], "ms"),
        Row("short-circuit reject", 0.10, measured["sc_reject"], "ms"),
        Row("break-even, long filters", 3.0, measured["break_even_long"]),
        Row("break-even, short-circuit", 10.0, measured["break_even_sc"]),
    ]
    emit(render_table(
        "Section 6.5.3: kernel-filtering vs user-demux break-even "
        "(filters rejected before acceptance)",
        rows,
    ))
    record_rows(
        "section-6-5-break-even",
        rows,
        notes="Paper: ~3 long filters / ~10 short-circuit filters "
        "(=> ~20 active processes) before user-level demultiplexing "
        "would have been the cheaper design.",
    )

    # The paper's two stated break-even points, within reason.
    assert 2.0 <= measured["break_even_long"] <= 6.0
    assert 8.0 <= measured["break_even_sc"] <= 40.0
    # And its conclusion: kernel demultiplexing wins "for a wide range
    # of situations" — i.e. the break-even needs many active filters.
    assert measured["break_even_sc"] > 5
