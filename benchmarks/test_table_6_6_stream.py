"""Table 6-6 / §6.4: byte-stream throughput — user-level Pup/BSP vs
kernel TCP, the packet-size correction, and the FTP disk variant.

Paper:

    Implementation       Rate
    Packet filter BSP    38 Kbytes/sec
    Unix kernel TCP      222 Kbytes/sec

"TCP is faster by almost a factor of six. ... Pup (hence BSP) allows a
maximum packet size of 568 bytes ... we found that if TCP is forced to
use the smaller packet size, its performance is cut in half.  After
this correction, TCP throughput is still three times that of BSP."

And the FTP observation: "TCP slows by a factor of two if the source of
data is a disk file, but the BSP throughput remains unchanged."
"""

from repro.bench import (
    Row,
    measure_bsp_bulk,
    measure_tcp_bulk,
    record_rows,
    render_table,
    within_factor,
)


def collect():
    tcp = measure_tcp_bulk()
    # Disk rate comparable to the stream's own pace, per the paper's
    # observed halving (their CPU and disk were evenly matched).
    disk_ms_per_kbyte = 1000.0 / tcp
    return {
        "bsp": measure_bsp_bulk(),
        "tcp": tcp,
        "tcp_small": measure_tcp_bulk(mss=514),
        "tcp_disk": measure_tcp_bulk(disk_ms_per_kbyte=disk_ms_per_kbyte),
        "bsp_disk": measure_bsp_bulk(disk_ms_per_kbyte=disk_ms_per_kbyte),
    }


def test_table_6_6_stream(once, emit):
    measured = once(collect)
    rows = [
        Row("Packet filter BSP", 38, measured["bsp"], "KB/s"),
        Row("Unix kernel TCP", 222, measured["tcp"], "KB/s"),
        Row("TCP @ 568B packets", 111, measured["tcp_small"], "KB/s"),
        Row("TCP from disk", 111, measured["tcp_disk"], "KB/s"),
        Row("BSP from disk", 38, measured["bsp_disk"], "KB/s"),
    ]
    emit(render_table("Table 6-6 / section 6.4: stream protocols", rows))
    record_rows(
        "table-6-6",
        rows,
        notes=(
            "BSP-from-disk drops slightly in our model (synchronous "
            "reads serialize with protocol work) where the paper saw "
            "no change; the qualitative contrast — TCP halves, BSP "
            "barely moves — is preserved."
        ),
    )

    # TCP beats BSP by a large factor...
    raw_factor = measured["tcp"] / measured["bsp"]
    assert raw_factor >= 2.5
    # ...halves at the Pup packet size...
    small_ratio = measured["tcp"] / measured["tcp_small"]
    assert 1.5 <= small_ratio <= 2.6
    # ...and still beats BSP after the correction (paper: 3x).
    corrected = measured["tcp_small"] / measured["bsp"]
    assert corrected >= 1.4
    # FTP variant: TCP halves from disk; BSP is much less affected.
    tcp_disk_ratio = measured["tcp"] / measured["tcp_disk"]
    bsp_disk_ratio = measured["bsp"] / measured["bsp_disk"]
    assert 1.5 <= tcp_disk_ratio <= 2.5
    assert bsp_disk_ratio < tcp_disk_ratio
    assert bsp_disk_ratio <= 1.35
    assert within_factor(measured["bsp"], 38, 1.8)
    assert within_factor(measured["tcp"], 222, 1.5)
