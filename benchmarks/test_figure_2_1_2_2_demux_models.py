"""Figures 2-1 and 2-2: the per-packet event cost of the two
demultiplexing models, measured rather than drawn.

Figure 2-1 (demultiplexing in a user process) shows, per packet: the
switch into the demux process, the switch into the destination, and the
data crossing the kernel boundary three times.  Figure 2-2 (kernel
demultiplexing) shows one wakeup and one crossing.  §2 states the
arithmetic: "at least two context switches and three system calls per
received packet."
"""

import pytest

from repro.bench import Row, count_receive_events, record_rows, render_table


def collect():
    return {
        "kernel": count_receive_events("kernel"),
        "user": count_receive_events("user"),
    }


def test_figure_2_1_2_2_demux_models(once, emit):
    events = once(collect)
    rows = [
        Row("user: context switches", 2.0, events["user"]["context_switches"]),
        Row("user: system calls", 3.0, events["user"]["syscalls"]),
        Row("user: data copies", 3.0, events["user"]["copies"]),
        Row("kernel: context switches", 1.0, events["kernel"]["context_switches"]),
        Row("kernel: system calls", 1.0, events["kernel"]["syscalls"]),
        Row("kernel: data copies", 1.0, events["kernel"]["copies"]),
    ]
    emit(render_table(
        "Figures 2-1/2-2: per-packet events under each demux model", rows
    ))
    record_rows("figure-2-1-2-2", rows)

    user, kernel = events["user"], events["kernel"]
    # §2's exact claim for the user-level demultiplexer:
    assert user["context_switches"] >= 2.0 - 0.05
    assert user["syscalls"] >= 3.0 - 0.15
    assert user["copies"] == pytest.approx(3.0, abs=0.1)
    # Kernel demultiplexing: one crossing, one copy, at most one switch.
    assert kernel["copies"] == pytest.approx(1.0, abs=0.1)
    assert kernel["syscalls"] == pytest.approx(1.0, abs=0.1)
    assert kernel["context_switches"] <= 1.1
