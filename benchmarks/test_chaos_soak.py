"""Chaos soak: the hardened receive path under hostile network weather.

Not a paper table — an acceptance matrix for the fault-injection work.
Every protocol built on the section 3 "write; read with timeout; retry
if necessary" paradigm must complete, byte-identical, through the
acceptance chaos profile: ~21% frame loss in Gilbert–Elliott bursts,
15% reordering, 5% single-bit corruption and 5% duplication, replayed
over fixed seeds.  A second benchmark isolates the adaptive
retransmission timer: against a slow-but-reliable server, the
historical fixed timeout retries every single call spuriously; the
Jacobson estimator learns the path after one round trip and stops.
"""

import pytest

from repro.bench import (
    CHAOS_SEEDS,
    Row,
    measure_spurious_retransmissions,
    record_rows,
    render_table,
    run_bsp_chaos,
    run_pup_echo_chaos,
    run_rarp_chaos,
    run_vmtp_chaos,
)

pytestmark = pytest.mark.chaos


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_bsp_transfer_survives_chaos(seed):
    result = run_bsp_chaos(seed=seed, payload_bytes=16 * 1024)
    assert result["intact"], (
        f"BSP stream damaged under chaos seed {seed}: "
        f"{result['delivered_bytes']} bytes, {result['receiver']}"
    )
    # The soak must actually have been a soak.
    assert result["segment_lost"] > 0
    assert result["segment_corrupted"] > 0
    # Corruption was *detected*, not silently ingested: the checksum
    # rejected at least one damaged packet somewhere.
    rejected = (
        result["sender"].corrupt_dropped + result["receiver"].corrupt_dropped
    )
    assert rejected > 0


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_vmtp_bulk_survives_chaos(seed):
    result = run_vmtp_chaos(seed=seed, calls=10, segment_bytes=8 * 1024)
    assert result["intact"], (
        f"VMTP replies damaged under chaos seed {seed}: "
        f"{result['calls_intact']}/{result['calls']} intact"
    )
    assert result["segment_lost"] > 0


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_rarp_discovery_survives_chaos(seed):
    result = run_rarp_chaos(seed=seed)
    assert result["intact"], (
        f"RARP answered {result['ip']:#010x} under chaos seed {seed}"
    )


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_pup_echo_survives_chaos(seed):
    result = run_pup_echo_chaos(seed=seed, count=6)
    assert result["intact"]
    assert all(rtt > 0.0 for rtt in result["round_trips"])


def test_adaptive_rto_fewer_spurious_retransmissions(once, emit):
    """The tentpole's acceptance benchmark: adaptive vs fixed timer.

    A loss-free path to a server slower than the fixed retry timeout.
    Every retry is spurious by construction; the adaptive timer must
    issue strictly fewer than the fixed baseline on every seed.
    """

    def collect():
        fixed = {}
        adaptive = {}
        for seed in CHAOS_SEEDS:
            fixed[seed] = measure_spurious_retransmissions(
                adaptive_rto=False, seed=seed
            )
            adaptive[seed] = measure_spurious_retransmissions(
                adaptive_rto=True, seed=seed
            )
        return fixed, adaptive

    fixed, adaptive = once(collect)
    total_fixed = sum(fixed.values())
    total_adaptive = sum(adaptive.values())
    rows = [
        Row(f"seed {seed}", fixed[seed], adaptive[seed], "retries")
        for seed in CHAOS_SEEDS
    ]
    rows.append(Row("total", total_fixed, total_adaptive, "retries"))
    emit(
        render_table(
            "Spurious retransmissions, 16 calls/seed, slow server "
            "(baseline column = fixed 100ms timer; measured = adaptive)",
            rows,
        )
    )
    record_rows(
        "chaos-spurious-rto",
        rows,
        notes=(
            "Loss-free path, 180 ms service time, jittered response "
            "direction.  Every retry re-asks a question the server is "
            "already answering; the adaptive timer learns the round "
            "trip after one exchange and stops retrying."
        ),
    )
    for seed in CHAOS_SEEDS:
        assert adaptive[seed] < fixed[seed], (
            f"seed {seed}: adaptive timer retried {adaptive[seed]}x, "
            f"fixed {fixed[seed]}x"
        )
    assert total_adaptive * 5 <= total_fixed
