"""Figure 3-6: the filter language summary — conformance + real speed.

The unit tests prove each operation's semantics; this benchmark prints
the language summary as implemented (so drift from figure 3-6 is
visible in the bench log) and measures the *wall-clock* throughput of
the Python interpreter on the paper's own example filters — the real
2026 numbers complementing the simulated 1987 ones.
"""

from repro.core.instructions import (
    CLASSIC_OPERATORS,
    CONSTANT_ACTIONS,
    SHORT_CIRCUIT_OPERATORS,
    StackAction,
)
from repro.core.interpreter import evaluate
from repro.core.paper_filters import figure_3_9_pup_socket_35
from repro.core.words import pack_words
from repro.bench import Row, record_rows

MATCHING = pack_words([0x0102, 2, 30, 0x0132, 0, 0, 0x0101, 0, 35])
MISSING = pack_words([0x0102, 2, 30, 0x0132, 0, 0, 0x0101, 0, 36])


def summarize_language() -> dict:
    return {
        "stack_actions": sorted(
            action.name for action in StackAction
        ),
        "constant_actions": {
            action.name: value for action, value in CONSTANT_ACTIONS.items()
        },
        "classic_operators": sorted(op.name for op in CLASSIC_OPERATORS),
        "short_circuit": sorted(op.name for op in SHORT_CIRCUIT_OPERATORS),
    }


def test_figure_3_6_language(once, emit, benchmark_runs=20_000):
    summary = summarize_language()
    emit("\n=== Figure 3-6: the language as implemented ===")
    emit(f"stack actions:     {', '.join(summary['stack_actions'])} + PUSHWORD+n")
    emit(f"classic operators: {', '.join(summary['classic_operators'])}")
    emit(f"short-circuit:     {', '.join(summary['short_circuit'])}")

    program = figure_3_9_pup_socket_35()

    def run_interpreter():
        accepted = 0
        for _ in range(benchmark_runs // 2):
            accepted += evaluate(program, MATCHING).accepted
            accepted += evaluate(program, MISSING).accepted
        return accepted

    accepted = once(run_interpreter)
    assert accepted == benchmark_runs // 2  # every MATCHING accepted

    # Conformance corner: the figure 3-6 inventory is exactly present.
    assert summary["short_circuit"] == ["CAND", "CNAND", "CNOR", "COR"]
    assert set(summary["constant_actions"].values()) == {
        0x0000, 0x0001, 0xFFFF, 0xFF00, 0x00FF,
    }
    rows = [
        Row("classic operators", 14, len(summary["classic_operators"])),
        Row("constant pushes", 5, len(summary["constant_actions"])),
        Row("short-circuit ops", 4, len(summary["short_circuit"])),
    ]
    record_rows("figure-3-6", rows)
