"""Figure 4-1: the filter application loop — semantics and scaling.

The figure's pseudo-code: apply filters in decreasing priority until
one accepts or all reject.  This benchmark checks the loop's behaviour
at scale ("on a busy system several dozen filters may be applied to an
incoming packet before it is accepted") and measures how the priority
and reordering heuristics cut the predicates tested, plus the simulated
demultiplexing cost per packet at several port counts — the paper's
0.8 + 0.122·n model.
"""

from repro.bench import Row, record_rows, render_table
from repro.core.compiler import compile_expr, word
from repro.core.demux import PacketFilterDemux
from repro.core.port import Port
from repro.core.words import pack_words
from repro.sim.costs import MICROVAX_II


def build_demux(ports, *, same_priority=True, reorder=True):
    demux = PacketFilterDemux(reorder_same_priority=reorder)
    for index in range(ports):
        port = Port(index, queue_limit=1024)
        priority = 10 if same_priority else 10 + (index % 5)
        port.bind_filter(
            compile_expr((word(6) == 0x0900) & (word(7) == index),
                         priority=priority)
        )
        demux.attach(port)
    return demux


def traffic(ports, packets, hot_fraction=0.7, hot_port=None):
    """A skewed mix: most packets for one busy port."""
    if hot_port is None:
        hot_port = ports - 1  # worst placed under naive ordering
    out = []
    for index in range(packets):
        target = hot_port if (index % 10) < hot_fraction * 10 else index % ports
        out.append(pack_words([0, 0, 0, 0, 0, 0, 0x0900, target]))
    return out


def collect():
    ports, packets = 24, 400
    results = {}
    for label, reorder in (("static order", False), ("reordering", True)):
        demux = build_demux(ports, reorder=reorder)
        for packet in traffic(ports, packets):
            demux.deliver(packet)
        results[label] = demux.mean_predicates_tested
    cost = MICROVAX_II
    results["ms static"] = (
        cost.pf_fixed + cost.filter_dispatch * results["static order"]
    ) * 1000 + results["static order"] * 2 * cost.filter_instruction * 1000
    results["ms reordered"] = (
        cost.pf_fixed + cost.filter_dispatch * results["reordering"]
    ) * 1000 + results["reordering"] * 2 * cost.filter_instruction * 1000
    return results


def test_figure_4_1_demux_loop(once, emit):
    measured = once(collect)
    rows = [
        Row("predicates, static", 12.0, measured["static order"]),
        Row("predicates, reordered", 4.0, measured["reordering"]),
        Row("pf ms/pkt, static", 0.8 + 0.122 * 12, measured["ms static"], "ms"),
        Row("pf ms/pkt, reordered", 0.8 + 0.122 * 4, measured["ms reordered"], "ms"),
    ]
    emit(render_table(
        "Figure 4-1: application loop with 24 active filters "
        "(paper columns: the 0.8+0.122n model at the expected depths)",
        rows,
    ))
    record_rows(
        "figure-4-1",
        rows,
        notes="Demonstrates §3.2: priorities/reordering make the "
        "average packet 'match one of the first few filters'.",
    )

    # Reordering pulls the busy filter forward: far fewer predicates.
    assert measured["reordering"] < measured["static order"] / 2
    # With uniform traffic and no reordering, the mean approaches half
    # the filter count, as §6.1 describes.
    demux = build_demux(16, reorder=False)
    for packet in traffic(16, 160, hot_fraction=0.0):
        demux.deliver(packet)
    assert 6 <= demux.mean_predicates_tested <= 10
