"""Figure 2-3: kernel-resident protocols confine overhead packets.

"In many protocols, far more packets are exchanged at lower levels than
are seen at higher levels (these include control, acknowledgement, and
duplicate packets).  A kernel-resident implementation confines these
overhead packets to the kernel and greatly reduces domain crossing."

Measured as: syscalls (and domain crossings) per received frame on the
receiving host of a reliable bulk stream.  Kernel TCP absorbs data and
ACK traffic below the syscall line; user-level BSP surfaces every
packet — data, ACK transmissions, timeouts — to user code.
"""

from repro.bench import Row, count_stream_crossings, record_rows, render_table


def collect():
    return {
        "tcp": count_stream_crossings("tcp"),
        "bsp": count_stream_crossings("bsp"),
    }


def test_figure_2_3_domain_crossings(once, emit):
    crossings = once(collect)
    rows = [
        Row(
            "kernel TCP: syscalls/frame", 0.5,
            crossings["tcp"]["syscalls_per_frame"],
        ),
        Row(
            "user BSP: syscalls/frame", 3.0,
            crossings["bsp"]["syscalls_per_frame"],
        ),
        Row(
            "kernel TCP: crossings/KB", 1.0,
            crossings["tcp"]["crossings_per_kbyte"],
        ),
        Row(
            "user BSP: crossings/KB", 12.0,
            crossings["bsp"]["crossings_per_kbyte"],
        ),
    ]
    emit(render_table(
        "Figure 2-3: domain crossings, kernel vs user protocols "
        "(paper column = this reproduction's analytical expectation; "
        "the figure itself is qualitative)",
        rows,
    ))
    record_rows(
        "figure-2-3",
        rows,
        notes="The figure is a diagram; the paper values here are the "
        "analytical expectations of its caption, not measurements.",
    )

    tcp, bsp = crossings["tcp"], crossings["bsp"]
    # The qualitative claim: kernel residency crosses domains far less.
    assert tcp["syscalls_per_frame"] < 1.0 <= bsp["syscalls_per_frame"]
    assert bsp["crossings_per_kbyte"] > 5 * tcp["crossings_per_kbyte"]
